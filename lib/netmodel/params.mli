(** Machine parameters of the (simulated) target cluster.

    The paper evaluates on an Intel Itanium cluster with 2 processors and
    4 GB of memory per node. We stand a simulated cluster in for it; its
    timing is fitted to the paper's published Tables 1–2, which are
    internally consistent with a per-shift-step cost that is a
    piecewise-linear function of message size (see DESIGN.md §4). All
    communication timing flows from [step_time]; all computation timing
    from [flop_rate]. *)

open! Import

type t = {
  name : string;
  step_time : Interp.t;
      (** seconds for one Cannon shift step, as a function of the local
          block size in {b bytes} *)
  flop_rate : float;  (** sustained flops/second per processor *)
  procs_per_node : int;
  mem_per_node_bytes : float;
}

val itanium_2003 : t
(** The paper's cluster: 2 procs/node, 4 GB/node, ≈615 Mflop/s per
    processor, and a step-time table back-derived from the published
    communication costs. *)

val uniform :
  name:string ->
  latency:float ->
  bandwidth:float ->
  flop_rate:float ->
  procs_per_node:int ->
  mem_per_node_bytes:float ->
  t
(** A pure α–β machine: [step_time bytes = latency + bytes/bandwidth]. *)

val step_time : t -> bytes:float -> float
(** One shift step of a block of the given size. *)

val rotation_time : t -> side:int -> bytes:float -> float
(** A full Cannon rotation: [side] shift steps. *)

val compute_time : t -> flops:float -> float

val mem_per_proc_bytes : t -> float

val pp : Format.formatter -> t -> unit

val fingerprint : t -> string
(** A deterministic content string of the machine spec (name, rates,
    memory, and the full step-time table at full float precision). Two
    specs time every plan identically iff their fingerprints are equal;
    a component of the planning daemon's cache key. *)
