(** Node-aware network topology (DESIGN.md §17).

    The paper's machine model is a flat torus with one α–β link
    characterization, but the target cluster packs several processors
    per node — messages between ranks on the same node move over a much
    faster link than messages crossing the interconnect. A topology
    couples the machine {!Params} with an optional second (intra-node)
    step-time table and the row-major rank → node mapping, and
    classifies each grid axis by the link class its rotation hops
    traverse. The default {!uniform} topology has no intra table and
    reproduces the flat model bit-for-bit. *)

open! Import

type link = Intra | Inter  (** link class of a nearest-neighbour hop *)

type t

val uniform : Params.t -> t
(** The paper's flat model: every hop costs [Params.step_time],
    regardless of node placement. *)

val node_aware : Params.t -> intra_latency:float -> intra_bandwidth:float -> t
(** A two-class model: inter-node hops cost [Params.step_time]; hops
    between ranks on the same node (of [params.procs_per_node]
    consecutive ranks) follow the α–β law
    [intra_latency + bytes/intra_bandwidth]. *)

val node_aware_table : Params.t -> intra_step_time:Interp.t -> t
(** Like {!node_aware} with an arbitrary intra-node step-time table. *)

val params : t -> Params.t
val is_uniform : t -> bool
val procs_per_node : t -> int

val node_of : t -> rank:int -> int
(** The node hosting [rank]: ranks are packed [procs_per_node] to a
    node in row-major rank order. *)

val step_time : t -> link:link -> bytes:float -> float
(** One shift step of a block of the given size over a link of the
    given class. On a {!uniform} topology both classes equal
    [Params.step_time]. *)

val axis_link : t -> Grid.t -> axis:int -> link
(** Link class of grid [axis] (1 or 2): [Intra] iff every
    nearest-neighbour hop of every ring along the axis (wrap-around
    included) stays on one node. *)

val link_name : link -> string

val fingerprint : t -> string
(** Deterministic content string ("topo:uniform", or the ppn and the
    full intra table at full float precision); a component of the
    planning daemon's cache key. *)

val pp : Format.formatter -> t -> unit
