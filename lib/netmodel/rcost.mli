(** The RCost communication-cost service (paper §3.3).

    [RCost(localsize, α, i)] is the cost of fully rotating the blocks of an
    α-distributed array, with [localsize] words per processor, along
    rotation axis [i]. The paper measures it empirically on the target
    machine for a grid of sizes and distribution shapes, stores the results
    in a characterization file, and answers queries by interpolation /
    extrapolation. We follow the same pipeline: a measurement function
    (either the analytic model or the discrete-event machine simulator) is
    sampled once per grid shape, written to disk, and queried thereafter —
    the optimizer never sees the underlying machine. *)

open! Import

type t
(** A characterization: per rotation axis, rotation cost as a function of
    local block size in words, for one grid shape (the paper's square
    √P × √P, or a rectangular R × C shape for topology-aware planning). *)

val side : t -> int
(** The square side. Raises [Invalid_argument] on a rectangular
    characterization — use {!rows}/{!cols} there. *)

val rows : t -> int
val cols : t -> int
val is_square : t -> bool

val characterize :
  side:int -> samples:int list -> measure:(axis:int -> words:int -> float)
  -> t
(** Run the measurement at every sample size (in words, must be positive
    and non-empty) for both rotation axes, on a square grid. *)

val characterize_rect :
  rows:int -> cols:int -> samples:int list
  -> measure:(axis:int -> words:int -> float) -> t
(** {!characterize} for a rectangular R × C grid shape. *)

val default_samples : int list
(** A geometric ladder of block sizes (1 Kword … 16 Mwords) augmented with
    the knot sizes of the fitted Itanium table, so that characterizing the
    analytic model reproduces it exactly. *)

val analytic_measure : Params.t -> side:int -> axis:int -> words:int -> float
(** The analytic model: [side · step_time(8·words)] (both axes equal). *)

val of_params : Params.t -> side:int -> t
(** [characterize] over {!default_samples} with {!analytic_measure}. *)

val topology_measure : Topology.t -> Grid.t -> axis:int -> words:int -> float
(** The topology-aware analytic model:
    [rotation_steps(axis) · step_time(link(axis), 8·words)] — the number
    of shift steps of a full rotation along the axis (see
    {!Grid.rotation_steps}) times the per-step time over the axis's link
    class. On a uniform topology and a square grid this is
    float-identical to {!analytic_measure}. *)

val of_topology : Topology.t -> Grid.t -> t
(** [characterize_rect] over {!default_samples} with
    {!topology_measure}; the grid fixes the shape. *)

val query : t -> axis:int -> words:int -> float
(** Interpolated rotation cost. [axis] must be 1 or 2; [words >= 0]. *)

val save : t -> path:string -> (unit, string) result
(** Write the characterization file (a self-describing text format; the
    v1 format of square characterizations is unchanged, rectangular
    shapes are written as v2). *)

val load : path:string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** Summary: shape, sample counts, a few sample values. *)

val fingerprint : t -> string
(** A deterministic content string of the whole characterization (shape
    and both axis tables at full float precision): two characterizations
    answer every query identically iff their fingerprints are equal. Used
    as a component of the planning daemon's cache key. Unchanged for
    square characterizations. *)
