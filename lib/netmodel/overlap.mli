(** Communication/computation overlap in the cost model.

    The paper's per-step cost is strictly additive: a Cannon step pays its
    rotation time plus its multiply time, because the reference
    implementation serializes shift-then-multiply. An engine that posts
    the next step's block sends before the multiply (see
    [Multicore.Overlapped]) hides part of the transit behind the
    arithmetic; node-aware distributed contraction work (Irmler et al.)
    exploits exactly this lever. This module is the model-side knob: a
    per-step cost law

    {v cost = max(comm, compute) + factor · min(comm, compute) v}

    where [factor ∈ [0, 1]] is the {e exposed} fraction of the
    overlappable time. [factor = 1] reproduces the paper's serialized
    [comm + compute] — the default everywhere, keeping the Tables 1–2
    reproduction intact — and [factor = 0] is perfect overlap,
    [max(comm, compute)], the α–β lower bound of a schedule that never
    waits for a message it could have hidden. *)

type t

val none : t
(** [factor = 1.0]: no overlap, the paper-faithful additive law. *)

val perfect : t
(** [factor = 0.0]: every overlappable second is hidden. *)

val make : factor:float -> (t, string) result
(** [factor] must lie in [[0, 1]]. *)

val make_exn : factor:float -> t
(** Like {!make}; raises [Tce_error.Error] on a factor outside [[0, 1]]. *)

val factor : t -> float

val is_none : t -> bool
(** True for the serialized law (within floating-point equality of 1.0). *)

val step_seconds : t -> comm:float -> compute:float -> float
(** The per-step cost law above. Raises [Tce_error.Error] on negative
    inputs. *)

val saved_seconds : t -> comm:float -> compute:float -> float
(** What overlap buys on this step: the additive cost minus
    {!step_seconds} (equivalently [(1 - factor) · min(comm, compute)]). *)

val pp : Format.formatter -> t -> unit
