open! Import

type t = {
  name : string;
  step_time : Interp.t;
  flop_rate : float;
  procs_per_node : int;
  mem_per_node_bytes : float;
}

(* Knots back-derived from the paper's Tables 1-2 (see DESIGN.md section 4):
   each published per-array communication cost, divided by the number of
   shift steps it implies (sqrt(P) times the fused-loop message factor),
   gives the per-step time at that array's local block size. *)
let itanium_step_knots =
  [
    (0.0, 0.0620);            (* latency floor *)
    (245_760.0, 0.08125);     (* C slices, 16 procs *)
    (491_520.0, 0.10039);     (* B slices, 16 procs *)
    (3_932_160.0, 0.35);      (* C blocks, 64 procs *)
    (7_864_320.0, 0.6125);    (* B blocks, 64 procs *)
    (29_491_200.0, 2.2688);   (* A / T2 blocks, 64 procs *)
    (55_296_000.0, 3.465);    (* fused T1 blocks, 16 procs *)
    (58_982_400.0, 4.4625);   (* D blocks, 64 procs *)
    (117_964_800.0, 8.85);    (* A / T2 blocks, 16 procs *)
  ]

let itanium_2003 =
  {
    name = "itanium-cluster-2003";
    step_time = Interp.of_points_exn itanium_step_knots;
    flop_rate = 6.15e8;
    procs_per_node = 2;
    mem_per_node_bytes = 4.0e9;
  }

let uniform ~name ~latency ~bandwidth ~flop_rate ~procs_per_node
    ~mem_per_node_bytes =
  if latency < 0.0 || bandwidth <= 0.0 || flop_rate <= 0.0 then
    invalid_arg "Params.uniform: non-positive machine parameter";
  (* Two knots suffice: Interp extrapolates the segment linearly, so the
     alpha-beta law holds for every size. *)
  let step_time =
    Interp.of_points_exn
      [ (0.0, latency); (1.0e9, latency +. (1.0e9 /. bandwidth)) ]
  in
  { name; step_time; flop_rate; procs_per_node; mem_per_node_bytes }

let step_time t ~bytes =
  if bytes < 0.0 then invalid_arg "Params.step_time: negative size";
  Interp.eval t.step_time bytes

let rotation_time t ~side ~bytes = float_of_int side *. step_time t ~bytes

let compute_time t ~flops =
  if flops < 0.0 then invalid_arg "Params.compute_time: negative flops";
  flops /. t.flop_rate

let mem_per_proc_bytes t =
  t.mem_per_node_bytes /. float_of_int t.procs_per_node

let pp ppf t =
  Format.fprintf ppf
    "%s: %d procs/node, %a/node, %.0f Mflop/s/proc, step(1MB)=%.3fs" t.name
    t.procs_per_node Units.pp_bytes_si t.mem_per_node_bytes
    (t.flop_rate /. 1e6)
    (step_time t ~bytes:1e6)

let fingerprint t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "machine:%s;flop=%.17g;ppn=%d;mem=%.17g;step=" t.name
       t.flop_rate t.procs_per_node t.mem_per_node_bytes);
  List.iter
    (fun (x, y) -> Buffer.add_string b (Printf.sprintf "%.17g:%.17g," x y))
    (Interp.points t.step_time);
  Buffer.contents b
