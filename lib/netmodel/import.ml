(* Aliases for lower-layer libraries; opened by every module in this
   library. *)
module Ints = Tce_util.Ints
module Listx = Tce_util.Listx
module Tce_error = Tce_util.Tce_error
module Interp = Tce_util.Interp
module Units = Tce_util.Units
module Index = Tce_index.Index
module Extents = Tce_index.Extents
module Grid = Tce_grid.Grid
module Dist = Tce_grid.Dist
