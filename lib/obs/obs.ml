let wall_pid = 1
let sim_pid = 2

type event = {
  name : string;
  cat : string;
  ph : [ `X | `I | `C ];
  pid : int;
  tid : int;
  ts_us : float;
  dur_us : float;
  value : float;
  args : (string * string) list;
}

type sink = {
  limit : int;
  lock : Mutex.t;
  mutable events_rev : event list;
  mutable n_events : int;
  mutable n_dropped : int;
  counters : (string, int ref) Hashtbl.t;
  thread_names : ((int * int), string) Hashtbl.t;
  epoch : float;  (* wall-clock origin: spans record [now - epoch] *)
}

let create ?(limit = 200_000) () =
  if limit < 0 then invalid_arg "Obs.create: negative limit";
  {
    limit;
    lock = Mutex.create ();
    events_rev = [];
    n_events = 0;
    n_dropped = 0;
    counters = Hashtbl.create 32;
    thread_names = Hashtbl.create 16;
    epoch = Unix.gettimeofday ();
  }

(* The one global probes consult. A single atomic load decides whether any
   probe does work, so with no sink installed instrumented hot paths pay
   only that load. *)
let current : sink option Atomic.t = Atomic.make None

let install s = Atomic.set current (Some s)
let uninstall () = Atomic.set current None
let enabled () = Atomic.get current <> None

let with_sink s f =
  install s;
  Fun.protect ~finally:uninstall f

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let record s e =
  locked s (fun () ->
      if s.n_events < s.limit then begin
        s.events_rev <- e :: s.events_rev;
        s.n_events <- s.n_events + 1
      end
      else s.n_dropped <- s.n_dropped + 1)

let span ?(cat = "") ?(tid = 0) ?(args = []) name f =
  match Atomic.get current with
  | None -> f ()
  | Some s ->
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      record s
        {
          name;
          cat;
          ph = `X;
          pid = wall_pid;
          tid;
          ts_us = (t0 -. s.epoch) *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
          value = 0.;
          args;
        }
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let span_sim ?(cat = "") ?(tid = 0) ?(args = []) name ~t0 ~t1 =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    record s
      {
        name;
        cat;
        ph = `X;
        pid = sim_pid;
        tid;
        ts_us = t0 *. 1e6;
        dur_us = (t1 -. t0) *. 1e6;
        value = 0.;
        args;
      }

let instant ?(cat = "") ?(tid = 0) ?(args = []) name =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    record s
      {
        name;
        cat;
        ph = `I;
        pid = wall_pid;
        tid;
        ts_us = (Unix.gettimeofday () -. s.epoch) *. 1e6;
        dur_us = 0.;
        value = 0.;
        args;
      }

let count ?(by = 1) name =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    locked s (fun () ->
        match Hashtbl.find_opt s.counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace s.counters name (ref by))

let set_thread_name ~pid ~tid name =
  match Atomic.get current with
  | None -> ()
  | Some s -> locked s (fun () -> Hashtbl.replace s.thread_names (pid, tid) name)

let events s = locked s (fun () -> List.rev s.events_rev)

let counters s =
  locked s (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let dropped s = locked s (fun () -> s.n_dropped)

let thread_names s =
  locked s (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.thread_names []
      |> List.sort compare)

(* {2 Chrome trace-event JSON} *)

let json_escape b str =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    str

let json_string b str =
  Buffer.add_char b '"';
  json_escape b str;
  Buffer.add_char b '"'

(* Chrome's importer accepts any JSON number for ts/dur; print with enough
   digits to round-trip and no exponent weirdness for typical values. *)
let json_float b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let emit_args b args =
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun k (key, v) ->
      if k > 0 then Buffer.add_char b ',';
      json_string b key;
      Buffer.add_char b ':';
      json_string b v)
    args;
  Buffer.add_char b '}'

let emit_event b e =
  Buffer.add_string b "{\"name\":";
  json_string b e.name;
  if e.cat <> "" then begin
    Buffer.add_string b ",\"cat\":";
    json_string b e.cat
  end;
  Buffer.add_string b ",\"ph\":";
  json_string b (match e.ph with `X -> "X" | `I -> "i" | `C -> "C");
  Buffer.add_string b ",\"ts\":";
  json_float b e.ts_us;
  (match e.ph with
  | `X ->
    Buffer.add_string b ",\"dur\":";
    json_float b (Float.max 0. e.dur_us)
  | `I | `C -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid e.tid);
  (match e.ph with
  | `C ->
    Buffer.add_string b ",\"args\":{\"value\":";
    json_float b e.value;
    Buffer.add_char b '}'
  | _ -> if e.args <> [] then emit_args b e.args);
  Buffer.add_char b '}'

let to_chrome_json s =
  let evs = events s in
  let ctrs = counters s in
  let names = thread_names s in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n";
    ()
  in
  List.iter
    (fun e ->
      sep ();
      emit_event b e)
    evs;
  (* One terminal sample per aggregate counter, on a dedicated track. *)
  List.iter
    (fun (name, v) ->
      sep ();
      emit_event b
        {
          name;
          cat = "counter";
          ph = `C;
          pid = wall_pid;
          tid = 0;
          ts_us = 0.;
          dur_us = 0.;
          value = float_of_int v;
          args = [];
        })
    ctrs;
  List.iter
    (fun ((pid, tid), name) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
            \"args\":{\"name\":" pid tid);
      json_string b name;
      Buffer.add_string b "}}")
    names;
  (* Label the two clock domains. *)
  List.iter
    (fun (pid, pname) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
            \"args\":{\"name\":\"%s\"}}" pid pname))
    [ (wall_pid, "wall clock"); (sim_pid, "simulated clock") ];
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_json s ~path =
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_chrome_json s))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* {2 Deterministic summary} *)

let summary s =
  let evs = events s in
  let ctrs = counters s in
  let b = Buffer.create 1024 in
  (* (pid, tid, name) -> (count, total sim seconds). Wall durations are
     nondeterministic, so only sim-clock spans report time. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.ph with
      | `X ->
        let key = (e.pid, e.tid, e.name) in
        let n, t =
          Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0.)
        in
        let t =
          if e.pid = sim_pid then t +. (e.dur_us /. 1e6) else t
        in
        Hashtbl.replace tbl key (n + 1, t)
      | `I | `C -> ())
    evs;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  List.iter
    (fun ((pid, tid, name), (n, t)) ->
      let clock = if pid = sim_pid then "sim" else "wall" in
      if pid = sim_pid then
        Buffer.add_string b
          (Printf.sprintf "span %s/%d %s: count=%d total=%.9fs\n" clock tid
             name n t)
      else
        Buffer.add_string b
          (Printf.sprintf "span %s/%d %s: count=%d\n" clock tid name n))
    rows;
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "counter %s = %d\n" name v))
    ctrs;
  Buffer.add_string b (Printf.sprintf "dropped = %d\n" (dropped s));
  Buffer.contents b

(* {2 Chrome trace validation} *)

module Trace_check = struct
  (* A small recursive-descent JSON parser — just enough structure to
     validate trace files without pulling in a JSON dependency. *)
  type json =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of json list
    | Obj of (string * json) list

  exception Bad of string

  type state = { src : string; mutable pos : int }

  let error st msg = raise (Bad (Printf.sprintf "%s at offset %d" msg st.pos))
  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let skip_ws st =
    let n = String.length st.src in
    while
      st.pos < n
      && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    match peek st with
    | Some c' when c' = c -> st.pos <- st.pos + 1
    | _ -> error st (Printf.sprintf "expected '%c'" c)

  let parse_lit st lit v =
    let n = String.length lit in
    if
      st.pos + n <= String.length st.src
      && String.sub st.src st.pos n = lit
    then begin
      st.pos <- st.pos + n;
      v
    end
    else error st (Printf.sprintf "expected %s" lit)

  let parse_string st =
    expect st '"';
    let b = Buffer.create 16 in
    let rec go () =
      if st.pos >= String.length st.src then error st "unterminated string";
      let c = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        if st.pos >= String.length st.src then error st "bad escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then error st "bad \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> error st "bad \\u escape"
          | Some code ->
            (* Validation only cares about well-formedness; encode the
               code point as UTF-8 without surrogate pairing. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code))
        | _ -> error st "bad escape");
        go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()

  let parse_number st =
    let start = st.pos in
    let n = String.length st.src in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while st.pos < n && is_num_char st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
    match float_of_string_opt (String.sub st.src start (st.pos - start)) with
    | Some f -> f
    | None -> error st "bad number"

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> error st "unexpected end of input"
    | Some '"' -> Str (parse_string st)
    | Some '{' -> parse_obj st
    | Some '[' -> parse_arr st
    | Some 't' -> parse_lit st "true" (Bool true)
    | Some 'f' -> parse_lit st "false" (Bool false)
    | Some 'n' -> parse_lit st "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number st)
    | Some c -> error st (Printf.sprintf "unexpected '%c'" c)

  and parse_obj st =
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> error st "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end

  and parse_arr st =
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> error st "expected ',' or ']'"
      in
      go ();
      Arr (List.rev !items)
    end

  let parse str =
    let st = { src = str; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length str then error st "trailing garbage";
    v

  let field obj key = List.assoc_opt key obj

  let check_event k v =
    let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
    match v with
    | Obj fields -> (
      match (field fields "name", field fields "ph") with
      | None, _ -> fail "event %d: missing \"name\"" k
      | Some (Str _), Some (Str ph) -> (
        let known =
          List.mem ph [ "B"; "E"; "X"; "I"; "i"; "C"; "M"; "P"; "b"; "e"; "n" ]
        in
        if not known then fail "event %d: unknown ph %S" k ph
        else
          let num key =
            match field fields key with
            | Some (Num _) -> Ok ()
            | Some _ -> fail "event %d: %S is not a number" k key
            | None -> fail "event %d: missing %S" k key
          in
          let ( let* ) = Result.bind in
          let* () = num "pid" in
          let* () = num "tid" in
          if ph = "M" then Ok ()  (* metadata events carry no timestamp *)
          else
            let* () = num "ts" in
            if ph = "X" then num "dur" else Ok ())
      | Some (Str _), _ -> fail "event %d: missing or non-string \"ph\"" k
      | Some _, _ -> fail "event %d: \"name\" is not a string" k)
    | _ -> fail "event %d: not an object" k

  let validate str =
    match parse str with
    | exception Bad msg -> Error ("invalid JSON: " ^ msg)
    | json -> (
      let events =
        match json with
        | Arr evs -> Ok evs
        | Obj fields -> (
          match field fields "traceEvents" with
          | Some (Arr evs) -> Ok evs
          | Some _ -> Error "\"traceEvents\" is not an array"
          | None -> Error "object form lacks \"traceEvents\"")
        | _ -> Error "top level is neither an array nor an object"
      in
      match events with
      | Error _ as e -> e
      | Ok evs ->
        let rec go k = function
          | [] -> Ok k
          | e :: rest -> (
            match check_event k e with
            | Ok () -> go (k + 1) rest
            | Error _ as err -> err)
        in
        go 0 evs)

  let validate_file path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error msg
    | contents -> validate contents
end

(* {2 Latency histograms} *)

module Hist = struct
  (* Log-bucketed: bucket [i] covers durations in
     [lo * growth^i, lo * growth^(i+1)), with [lo] = 1 us and
     [growth] = 1.25 — ~2.4% worst-case quantile error over a
     1 us .. ~1000 s range in 96 buckets of constant memory. Underflow
     lands in bucket 0, overflow in the last bucket. Thread-safe. *)
  let lo = 1e-6
  let growth = 1.25
  let nbuckets = 96

  type t = {
    lock : Mutex.t;
    buckets : int array;
    mutable n : int;
    mutable sum : float;
    mutable vmax : float;
  }

  let create () =
    {
      lock = Mutex.create ();
      buckets = Array.make nbuckets 0;
      n = 0;
      sum = 0.0;
      vmax = 0.0;
    }

  let bucket_of v =
    if v <= lo then 0
    else
      let i = int_of_float (Float.log (v /. lo) /. Float.log growth) in
      if i >= nbuckets then nbuckets - 1 else i

  (* Geometric midpoint of a bucket: the value reported for any quantile
     that falls inside it. *)
  let bucket_value i = lo *. (growth ** (float_of_int i +. 0.5))

  let add t v =
    if Float.is_nan v || v < 0.0 then
      invalid_arg "Obs.Hist.add: duration must be a nonnegative number";
    Mutex.lock t.lock;
    t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v > t.vmax then t.vmax <- v;
    Mutex.unlock t.lock

  let count t =
    Mutex.lock t.lock;
    let n = t.n in
    Mutex.unlock t.lock;
    n

  let mean t =
    Mutex.lock t.lock;
    let m = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n in
    Mutex.unlock t.lock;
    m

  let max_value t =
    Mutex.lock t.lock;
    let m = t.vmax in
    Mutex.unlock t.lock;
    m

  let percentile t p =
    if Float.is_nan p || p < 0.0 || p > 100.0 then
      invalid_arg "Obs.Hist.percentile: p must be in [0, 100]";
    Mutex.lock t.lock;
    let v =
      if t.n = 0 then 0.0
      else begin
        (* The smallest bucket whose cumulative count reaches rank
           ceil(p/100 * n), rank at least 1. *)
        let rank =
          Stdlib.max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)))
        in
        let rec go i acc =
          if i >= nbuckets then t.vmax
          else
            let acc = acc + t.buckets.(i) in
            if acc >= rank then Float.min (bucket_value i) t.vmax else go (i + 1) acc
        in
        go 0 0
      end
    in
    Mutex.unlock t.lock;
    v
end
