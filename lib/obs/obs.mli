(** Unified tracing and metrics for the whole stack.

    A zero-dependency (stdlib + unix) structured observability layer: every
    subsystem — the DP {!Tce_core.Search}, the discrete-event
    {!Tce_machine.Simulate} replay, the real {!Tce_runtime.Spmd} /
    {!Tce_runtime.Multicore} engines and the {!Tce_tensor.Kernel}
    microkernel dispatch — emits spans, instants and named counters through
    this module, and two exporters turn a recording into either
    Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) or a
    deterministic plain-text summary for tests.

    {2 Clocks}

    Two time bases coexist in one trace, separated by process ID:

    - {b wall clock} ([pid = wall_pid]): real elapsed time, measured with
      [Unix.gettimeofday] relative to the sink's creation. Per-rank SPMD
      activity (send-wait, recv-wait, multiply, barrier, gather) lives
      here, one Chrome thread (tid) per rank.
    - {b simulated clock} ([pid = sim_pid]): the discrete-event cluster's
      clock. {!span_sim} records a span at explicit [t0]/[t1] simulated
      seconds, so a Simulate replay produces per-Cannon-step comm and
      compute spans positioned on the model's own timeline, bit-identical
      across runs.

    {2 Cost discipline}

    When no sink is installed every probe is a no-op behind a single
    {!enabled} check — no allocation, no clock read, no lock — so
    instrumented hot paths (Spmd primitives, the kernel) cost one atomic
    load when tracing is off. Recording is thread-safe: SPMD domains
    append concurrently under the sink's lock. The sink bounds its event
    buffer ([limit], default 200k); overflow events are counted in
    {!dropped}, never stored. *)

val wall_pid : int
(** Chrome process ID of the wall-clock track group (1). *)

val sim_pid : int
(** Chrome process ID of the simulated-clock track group (2). *)

type event = {
  name : string;
  cat : string;  (** Chrome category, e.g. "spmd", "comm", "search" *)
  ph : [ `X  (** complete span *) | `I  (** instant *) | `C  (** counter *) ];
  pid : int;
  tid : int;
  ts_us : float;  (** start, microseconds on the track's clock *)
  dur_us : float;  (** [`X] only; 0 otherwise *)
  value : float;  (** [`C] only; 0 otherwise *)
  args : (string * string) list;
}

type sink

val create : ?limit:int -> unit -> sink
(** A fresh recording buffer. [limit] bounds the number of stored events
    (default 200_000); raises [Invalid_argument] when negative. *)

val install : sink -> unit
(** Make [sink] the recording target of every probe. *)

val uninstall : unit -> unit
(** Disable recording; probes return to no-ops. *)

val enabled : unit -> bool
(** True iff a sink is installed (one atomic load — the guard every probe
    uses, exposed so callers can skip argument construction too). *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f], and uninstalls on the way out
    (exceptions included). *)

(** {2 Probes} — all are no-ops when no sink is installed. *)

val span : ?cat:string -> ?tid:int -> ?args:(string * string) list ->
  string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] on the wall clock and records a complete
    event on [wall_pid]/[tid] (default tid 0). The span is recorded even
    when [f] raises. *)

val span_sim : ?cat:string -> ?tid:int -> ?args:(string * string) list ->
  string -> t0:float -> t1:float -> unit
(** Record a complete span on the simulated clock ([sim_pid]), from [t0]
    to [t1] simulated seconds. *)

val instant : ?cat:string -> ?tid:int -> ?args:(string * string) list ->
  string -> unit
(** A zero-duration marker on the wall clock. *)

val count : ?by:int -> string -> unit
(** [count name] bumps the named aggregate counter by [by] (default 1).
    Counters appear, sorted by name, in both exporters. *)

val set_thread_name : pid:int -> tid:int -> string -> unit
(** Label a Chrome track (emitted as a [thread_name] metadata event). *)

(** {2 Introspection and export} *)

val events : sink -> event list
(** Recorded events, oldest first. *)

val counters : sink -> (string * int) list
(** Aggregate counters, sorted by name. *)

val dropped : sink -> int
(** Events discarded because the sink was full. *)

val to_chrome_json : sink -> string
(** The recording as a Chrome trace-event JSON object
    ([{"traceEvents": [...]}]): events in recording order, then one
    counter sample per aggregate counter, then thread-name metadata. *)

val write_chrome_json : sink -> path:string -> (unit, string) result

val summary : sink -> string
(** Deterministic plain-text digest: per-track span counts (with total
    simulated seconds for sim-clock spans — wall durations are elided so
    the text is stable across runs), then counters, then the drop count. *)

(** {2 Chrome trace validation} *)

module Trace_check : sig
  val validate : string -> (int, string) result
  (** Parse a JSON string (full generic grammar) and check it is a
      Chrome trace-event file: either a bare event array or an object
      with a [traceEvents] array, where every event is an object with a
      string [name], a one-of-[B E X I i C M P] string [ph], numeric
      [ts] (except [M] metadata), numeric [pid] and [tid], and a numeric
      [dur] when [ph = "X"]. Returns the event count. *)

  val validate_file : string -> (int, string) result
end

(** {2 Latency histograms}

    A small thread-safe log-bucketed duration histogram for long-running
    services (the planning daemon's p50/p99 request latencies). Constant
    memory: 96 geometric buckets covering 1 µs to ~1000 s with ~2.4%
    worst-case quantile error. Independent of the sink — histograms are
    explicit values, not probes, so a server can report latency
    percentiles whether or not tracing is on. *)
module Hist : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Record one duration in seconds. Raises [Invalid_argument] on NaN or
      negative values. *)

  val count : t -> int
  val mean : t -> float

  val max_value : t -> float
  (** Largest recorded value (exact, not bucketed); 0 when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [[0, 100]]: the geometric midpoint of
      the bucket holding the rank-⌈p/100·n⌉ sample (clamped to
      {!max_value}); 0 when empty. Raises [Invalid_argument] outside
      [[0, 100]]. *)
end
