(** The size and communication equations of paper §3.2–3.3.

    For an array [v] with dimension indices [dims], distribution [α] and
    fusion [f] with its parent (a set of fused loop indices, eliminated
    from the stored array):

    - [DistRange(i)] is the per-processor range of dimension [i]: 1 when
      fused away, [N_i/√P] when distributed, [N_i] otherwise;
    - [DistSize] is the per-processor block size in words (the product of
      the ranges);
    - [LoopRange(j)] is how many times the fused [j]-loop iterates around
      the communication: 1 when not fused, [N_j/√P] when fused and
      distributed, [N_j] when fused and undistributed;
    - [MsgFactor] is the product of the loop ranges — the number of times
      the array is communicated;
    - [RotateCost = MsgFactor · RCost(DistSize, α, axis)].

    Non-divisible extents are handled with ceiling division, slightly
    overestimating sizes (a safe direction for a memory limit). *)

open! Import

val dist_range :
  Extents.t -> side:int -> alpha:Dist.t -> fused:Index.Set.t -> Index.t -> int

val dist_size :
  Extents.t -> side:int -> alpha:Dist.t -> fused:Index.Set.t
  -> dims:Index.t list -> int
(** Per-processor words of the stored (fusion-reduced, distributed)
    array. *)

val loop_range :
  Extents.t -> side:int -> alpha:Dist.t -> fused:Index.Set.t -> Index.t -> int

val msg_factor :
  Extents.t -> side:int -> alpha:Dist.t -> fused:Index.Set.t
  -> dims:Index.t list -> int
(** How many separate rotations the fused loops force. 1 when [fused] is
    empty: the array is rotated exactly once. *)

val rotate_cost :
  rcost:Rcost.t -> Extents.t -> alpha:Dist.t -> fused:Index.Set.t
  -> dims:Index.t list -> axis:int -> float
(** Total communication cost for rotating the array along processor
    dimension [axis] (the grid side is the characterization's). *)

(** {2 Rectangular grids}

    The same equations on an R × C grid: distribution position 1 divides
    its dimension by [rows], position 2 by [cols]. With
    [rows = cols = side] each computes the identical integers to its
    [~side] counterpart above. *)

val dist_range_rect :
  Extents.t -> rows:int -> cols:int -> alpha:Dist.t -> fused:Index.Set.t
  -> Index.t -> int

val dist_size_rect :
  Extents.t -> rows:int -> cols:int -> alpha:Dist.t -> fused:Index.Set.t
  -> dims:Index.t list -> int

val loop_range_rect :
  Extents.t -> rows:int -> cols:int -> alpha:Dist.t -> fused:Index.Set.t
  -> Index.t -> int

val msg_factor_rect :
  Extents.t -> rows:int -> cols:int -> alpha:Dist.t -> fused:Index.Set.t
  -> dims:Index.t list -> int

val rotate_cost_rect :
  rcost:Rcost.t -> Extents.t -> alpha:Dist.t -> fused:Index.Set.t
  -> dims:Index.t list -> axis:int -> float
(** [rotate_cost] with the characterization's R × C shape. *)

val full_words : Extents.t -> dims:Index.t list -> int
(** Size of the undistributed, unfused array (for reporting). *)
