open! Import

let dist_range ext ~side ~alpha ~fused i =
  if Index.Set.mem i fused then 1
  else if Dist.distributes alpha i then
    Ints.ceil_div (Extents.extent ext i) side
  else Extents.extent ext i

let dist_size ext ~side ~alpha ~fused ~dims =
  List.fold_left
    (fun acc i -> acc * dist_range ext ~side ~alpha ~fused i)
    1 dims

let loop_range ext ~side ~alpha ~fused j =
  if not (Index.Set.mem j fused) then 1
  else if Dist.distributes alpha j then
    Ints.ceil_div (Extents.extent ext j) side
  else Extents.extent ext j

let msg_factor ext ~side ~alpha ~fused ~dims =
  List.fold_left
    (fun acc j -> acc * loop_range ext ~side ~alpha ~fused j)
    1 dims

let rotate_cost ~rcost ext ~alpha ~fused ~dims ~axis =
  let side = Rcost.side rcost in
  let words = dist_size ext ~side ~alpha ~fused ~dims in
  let factor = msg_factor ext ~side ~alpha ~fused ~dims in
  float_of_int factor *. Rcost.query rcost ~axis ~words

(* Rectangular-grid variants: distribution position 1 divides by [rows],
   position 2 by [cols]. On a square grid ([rows = cols = side]) every
   function below computes the identical integers to its [~side]
   counterpart. *)

let dist_range_rect ext ~rows ~cols ~alpha ~fused i =
  if Index.Set.mem i fused then 1
  else
    match Dist.position_of alpha i with
    | Some 1 -> Ints.ceil_div (Extents.extent ext i) rows
    | Some 2 -> Ints.ceil_div (Extents.extent ext i) cols
    | _ -> Extents.extent ext i

let dist_size_rect ext ~rows ~cols ~alpha ~fused ~dims =
  List.fold_left
    (fun acc i -> acc * dist_range_rect ext ~rows ~cols ~alpha ~fused i)
    1 dims

let loop_range_rect ext ~rows ~cols ~alpha ~fused j =
  if not (Index.Set.mem j fused) then 1
  else
    match Dist.position_of alpha j with
    | Some 1 -> Ints.ceil_div (Extents.extent ext j) rows
    | Some 2 -> Ints.ceil_div (Extents.extent ext j) cols
    | _ -> Extents.extent ext j

let msg_factor_rect ext ~rows ~cols ~alpha ~fused ~dims =
  List.fold_left
    (fun acc j -> acc * loop_range_rect ext ~rows ~cols ~alpha ~fused j)
    1 dims

let rotate_cost_rect ~rcost ext ~alpha ~fused ~dims ~axis =
  let rows = Rcost.rows rcost and cols = Rcost.cols rcost in
  let words = dist_size_rect ext ~rows ~cols ~alpha ~fused ~dims in
  let factor = msg_factor_rect ext ~rows ~cols ~alpha ~fused ~dims in
  float_of_int factor *. Rcost.query rcost ~axis ~words

let full_words ext ~dims = Extents.size_of ext dims
