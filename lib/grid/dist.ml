open! Import

type t = { p1 : Index.t option; p2 : Index.t option }

let make p1 p2 =
  (match (p1, p2) with
  | Some i, Some j when Index.equal i j ->
    invalid_arg "Dist.make: the two positions must name distinct indices"
  | _ -> ());
  { p1; p2 }

let pair i j = make (Some i) (Some j)
let none = { p1 = None; p2 = None }
let p1 t = t.p1
let p2 t = t.p2

let at t = function
  | 1 -> t.p1
  | 2 -> t.p2
  | d -> invalid_arg (Printf.sprintf "Dist.at: position %d (must be 1 or 2)" d)

let position_of t i =
  match (t.p1, t.p2) with
  | Some x, _ when Index.equal x i -> Some 1
  | _, Some y when Index.equal y i -> Some 2
  | _ -> None

let distributes t i = position_of t i <> None
let indices t = List.filter_map Fun.id [ t.p1; t.p2 ]

let restrict t ~keep =
  let f = function
    | Some i when not (Index.Set.mem i keep) -> None
    | p -> p
  in
  { p1 = f t.p1; p2 = f t.p2 }

let rename t ~from ~into =
  if List.length from <> List.length into then
    invalid_arg "Dist.rename: index lists differ in length";
  let f = function
    | None -> None
    | Some i -> (
      match List.find_index (Index.equal i) from with
      | Some k -> Some (List.nth into k)
      | None ->
        invalid_arg
          (Printf.sprintf "Dist.rename: index %s not in the source list"
             (Index.name i)))
  in
  make (f t.p1) (f t.p2)

let equal a b =
  Option.equal Index.equal a.p1 b.p1 && Option.equal Index.equal a.p2 b.p2

let compare a b =
  match Option.compare Index.compare a.p1 b.p1 with
  | 0 -> Option.compare Index.compare a.p2 b.p2
  | c -> c

let enumerate dims ?(allow_partial = true) () =
  let slots = None :: List.map (fun i -> Some i) dims in
  let full =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if Index.equal i j then None else Some (pair i j))
          dims)
      dims
  in
  if not allow_partial then full
  else
    List.filter
      (fun d ->
        match (d.p1, d.p2) with Some _, Some _ -> false | _ -> true)
      (List.concat_map
         (fun a -> List.filter_map (fun b ->
              match (a, b) with
              | Some x, Some y when Index.equal x y -> None
              | _ -> Some { p1 = a; p2 = b }) slots)
         slots)
    @ full

let local_dims grid ext t ~coord:(z1, z2) aref =
  List.iter
    (fun i ->
      if not (Aref.mentions aref i) then
        invalid_arg
          (Printf.sprintf "Dist.local_dims: %s does not have index %s"
             (Aref.name aref) (Index.name i)))
    (indices t);
  List.map
    (fun i ->
      let extent = Extents.extent ext i in
      match position_of t i with
      | Some 1 -> (i, Grid.myrange grid ~axis:1 ~extent ~coord:z1)
      | Some 2 -> (i, Grid.myrange grid ~axis:2 ~extent ~coord:z2)
      | _ -> (i, (0, extent)))
    (Aref.indices aref)

let pp ppf t =
  let pos ppf = function
    | None -> Format.pp_print_char ppf '-'
    | Some i -> Index.pp ppf i
  in
  Format.fprintf ppf "<%a,%a>" pos t.p1 pos t.p2
