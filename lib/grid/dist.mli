(** Array distributions on the 2-D processor grid (paper §3.1).

    A distribution is a pair [⟨i, j⟩]: position [d] names the array index
    whose dimension is block-partitioned along processor dimension [d].
    A position may be empty ([None]), meaning no array dimension is split
    along that processor dimension — the data is then replicated across it.
    The paper's search only uses full pairs drawn from a contraction's
    {i, j, k} triple; empty positions appear for low-rank arrays and for
    the replicated operands of unary summation nodes. *)

open! Import

type t = private { p1 : Index.t option; p2 : Index.t option }

val make : Index.t option -> Index.t option -> t
(** Raises [Invalid_argument] if both positions name the same index. *)

val pair : Index.t -> Index.t -> t
(** [pair i j] is [⟨i, j⟩]. *)

val none : t
(** Fully replicated: [⟨-, -⟩]. *)

val p1 : t -> Index.t option
val p2 : t -> Index.t option

val at : t -> int -> Index.t option
(** [at t d] is position [d] (1 or 2): the paper's [α\[d\]]. *)

val position_of : t -> Index.t -> int option
(** [Some d] if the index is distributed along processor dimension [d]. *)

val distributes : t -> Index.t -> bool

val indices : t -> Index.t list

val restrict : t -> keep:Index.Set.t -> t
(** Drop positions whose index is not in [keep] (used when summation
    collapses a distributed dimension). *)

val rename : t -> from:Index.t list -> into:Index.t list -> t
(** Positional rename: an occupied position naming [from]'s [m]-th index
    comes back naming [into]'s [m]-th index. Used to re-express a shared
    intermediate's stored distribution in the index names of one consumer
    occurrence. Raises [Invalid_argument] if the lists differ in length,
    if an occupied position's index is missing from [from], or if the
    renaming maps both positions to the same index. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val enumerate : Index.t list -> ?allow_partial:bool -> unit -> t list
(** All distributions of an array with the given dimension indices: ordered
    pairs of distinct indices, and — when [allow_partial] is true (default)
    — pairs with one or both positions empty. *)

val local_dims :
  Grid.t -> Extents.t -> t -> coord:int * int -> Aref.t
  -> (Index.t * (int * int)) list
(** Per array dimension, the (offset, length) range of the block owned by
    the processor at [coord] under this distribution. Dimensions not named
    by the distribution span their full extent. Raises [Invalid_argument]
    if the distribution names an index the array lacks. *)

val pp : Format.formatter -> t -> unit
(** Prints [⟨d,b⟩], with [-] for an empty position. *)
