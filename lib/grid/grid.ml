open! Import

type t = { procs : int; rows : int; cols : int }

let create ~procs =
  if procs <= 0 then Error "grid: processor count must be positive"
  else if not (Ints.is_perfect_square procs) then
    Error
      (Printf.sprintf
         "grid: processor count %d is not a perfect square (the logical view \
          is a sqrt(P) x sqrt(P) grid)"
         procs)
  else
    let s = Ints.isqrt procs in
    Ok { procs; rows = s; cols = s }

let create_exn ~procs =
  match create ~procs with
  | Ok t -> t
  | Error msg -> invalid_arg ("Grid.create_exn: " ^ msg)

let create_rect ~rows ~cols =
  if rows <= 0 || cols <= 0 then
    Error "grid: row and column counts must be positive"
  else Ok { procs = rows * cols; rows; cols }

let create_rect_exn ~rows ~cols =
  match create_rect ~rows ~cols with
  | Ok t -> t
  | Error msg -> invalid_arg ("Grid.create_rect_exn: " ^ msg)

let procs t = t.procs
let rows t = t.rows
let cols t = t.cols
let is_square t = t.rows = t.cols

let side t =
  if t.rows <> t.cols then
    invalid_arg
      (Printf.sprintf "Grid.side: %dx%d grid is not square" t.rows t.cols);
  t.rows

let axis_len t ~axis =
  match axis with
  | 1 -> t.rows
  | 2 -> t.cols
  | _ -> invalid_arg "Grid.axis_len: axis must be 1 or 2"

(* Shift steps a full Cannon rotation performs along [axis]. On a square
   grid every rotated role takes [side] steps (the classic schedule; the
   1x1 grid keeps its single degenerate step for cost-model stability).
   On a rectangular grid a length-1 axis never moves; when one axis
   length divides the other, the skewed m-scheme rotates each role once
   per owned chunk ([axis_len] steps); otherwise the nested schedule
   replays the longer axis once per step of the shorter one. *)
let rotation_steps t ~axis =
  let own = axis_len t ~axis in
  let other = axis_len t ~axis:(3 - axis) in
  if t.rows = t.cols then t.rows
  else if own = 1 then 0
  else if own mod other = 0 || other mod own = 0 then own
  else if own > other then own * other
  else own

let coords t =
  List.concat
    (List.init t.rows (fun z1 -> List.init t.cols (fun z2 -> (z1, z2))))

let rank_of t (z1, z2) =
  if z1 < 0 || z1 >= t.rows || z2 < 0 || z2 >= t.cols then
    invalid_arg "Grid.rank_of: coordinate out of range";
  (z1 * t.cols) + z2

let coord_of t rank =
  if rank < 0 || rank >= t.procs then
    invalid_arg "Grid.coord_of: rank out of range";
  (rank / t.cols, rank mod t.cols)

let shift t (z1, z2) ~axis ~by =
  let wrap n v = ((v mod n) + n) mod n in
  match axis with
  | 1 -> (wrap t.rows (z1 + by), z2)
  | 2 -> (z1, wrap t.cols (z2 + by))
  | _ -> invalid_arg "Grid.shift: axis must be 1 or 2"

let myrange t ~axis ~extent ~coord =
  let n = axis_len t ~axis in
  if coord < 0 || coord >= n then
    invalid_arg "Grid.myrange: coordinate out of range";
  if extent <= 0 then invalid_arg "Grid.myrange: extent must be positive";
  let lo = coord * extent / n in
  let hi = (coord + 1) * extent / n in
  (lo, hi - lo)

let block_len t ~axis ~extent = Ints.ceil_div extent (axis_len t ~axis)
let pp ppf t = Format.fprintf ppf "%dx%d grid (%d procs)" t.rows t.cols t.procs
