(** The logical R × C processor grid (paper §3.1).

    Cannon's algorithm views the P processors as a two-dimensional torus;
    arrays are partitioned along the two processor dimensions. The paper's
    grid is the square √P × √P special case; rectangular R × C shapes are
    supported so the topology-aware search can pick shapes aligned with
    the node boundaries of the physical machine. The logical view is
    independent of the physical interconnect — costs come from the
    (empirically characterized) communication model, not from grid
    geometry. *)

open! Import

type t

val create : procs:int -> (t, string) result
(** [create ~procs] requires [procs] to be a positive perfect square and
    builds the paper's square √P × √P grid. *)

val create_exn : procs:int -> t

val create_rect : rows:int -> cols:int -> (t, string) result
(** [create_rect ~rows ~cols] builds a rectangular grid; both counts must
    be positive. [create_rect ~rows:s ~cols:s] is identical to
    [create ~procs:(s * s)]. *)

val create_rect_exn : rows:int -> cols:int -> t

val procs : t -> int

val rows : t -> int
(** Processors along grid axis 1. *)

val cols : t -> int
(** Processors along grid axis 2. *)

val is_square : t -> bool

val side : t -> int
(** √P on a square grid: processors per grid dimension, also the number
    of shift steps of a full Cannon rotation. Raises [Invalid_argument]
    on a rectangular grid — callers on the rectangular path must use
    {!rows}/{!cols}/{!axis_len} instead. *)

val axis_len : t -> axis:int -> int
(** Processors along grid [axis] (1 or 2). *)

val rotation_steps : t -> axis:int -> int
(** Number of nearest-neighbour shift steps a full rotation of a role
    distributed along [axis] performs. [side] on a square grid (the
    classic Cannon schedule); on a rectangular grid: 0 for a length-1
    axis, the axis length when one axis length divides the other (the
    skewed m-scheme), and [own · other] for the longer axis of a
    non-divisible shape (the nested schedule replays the long axis once
    per short-axis step). *)

val coords : t -> (int * int) list
(** All processor coordinates [(z1, z2)], 0-based, row-major. *)

val rank_of : t -> int * int -> int
(** Row-major linearization of a coordinate: [z1 * cols + z2]. *)

val coord_of : t -> int -> int * int
(** Inverse of {!rank_of}. *)

val shift : t -> int * int -> axis:int -> by:int -> int * int
(** Torus neighbour: move [by] steps along processor dimension [axis]
    (1 or 2), wrapping. *)

val myrange : t -> axis:int -> extent:int -> coord:int -> int * int
(** [(offset, length)] of the block owned by grid position [coord]
    (0-based) along processor dimension [axis], for an array dimension of
    the given extent: the paper's [myrange(z, N, s)] with [s] the axis
    length. Blocks are balanced ([⌊zN/s⌋ .. ⌊(z+1)N/s⌋)) and exactly tile
    the extent; when the axis length divides [extent] this is the paper's
    equal division. *)

val block_len : t -> axis:int -> extent:int -> int
(** Largest block length along processor dimension [axis]
    ([⌈extent/axis_len⌉]); the per-processor range used in size
    formulas. *)

val pp : Format.formatter -> t -> unit
