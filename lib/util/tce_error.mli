(** The typed error surface of the engine.

    Recoverable failures in the simulator, the executors and the planner
    are reported as values of {!t} — either directly through [result]
    returns, or wrapped in the {!Error} exception where an exception is
    the only practical transport (deep inside an executor loop). Callers
    that want to degrade gracefully (the fault-tolerant planner, the
    bench harness) match on the constructors; callers that want the old
    fail-fast behaviour use {!get_ok}. *)

type t =
  | Runaway_rounds of { where : string; rounds : int; limit : int }
      (** a plan implies more communication rounds than any real run
          would attempt *)
  | Negative_time of { where : string; seconds : float }
      (** a negative duration reached a clock-advancing primitive *)
  | Node_crashed of { rank : int; at : float }
      (** a fault-model crash event interrupted a simulated run *)
  | Missing_tensor of { where : string; name : string }
      (** an executor was handed a plan whose input is absent *)
  | Deadline_exceeded of { where : string }
      (** a cooperative cancellation token fired: the caller's deadline
          passed while the work was still running *)
  | Msg of string  (** everything else, human-readable *)

exception Error of t

val exit_code : t -> int
(** A stable nonzero process exit code per constructor (2–7), so scripts
    can branch on the failure class without parsing stderr. *)

val kind : t -> string
(** A stable machine-readable tag per constructor (the wire protocol's
    error [kind] field): ["runaway_rounds"], ["negative_time"],
    ["node_crashed"], ["missing_tensor"], ["deadline_exceeded"],
    ["error"]. *)

val msg : string -> t
val errorf : ('a, Format.formatter, unit, t) format4 -> 'a
val raise_err : t -> 'a
val failf : ('a, Format.formatter, unit, 'b) format4 -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching {!Error} into [Error]. Other exceptions pass
    through. *)

val to_string_result : ('a, t) result -> ('a, string) result
(** Adapt a typed result to the string-error convention of the search
    layer. *)

val get_ok : ('a, t) result -> 'a
(** [Ok v -> v]; re-raises the typed error as {!Error} otherwise. *)
