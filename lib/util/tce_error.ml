type t =
  | Runaway_rounds of { where : string; rounds : int; limit : int }
  | Negative_time of { where : string; seconds : float }
  | Node_crashed of { rank : int; at : float }
  | Missing_tensor of { where : string; name : string }
  | Deadline_exceeded of { where : string }
  | Msg of string

exception Error of t

let msg s = Msg s
let errorf fmt = Format.kasprintf (fun s -> Msg s) fmt
let raise_err e = raise (Error e)
let failf fmt = Format.kasprintf (fun s -> raise (Error (Msg s))) fmt

let to_string = function
  | Runaway_rounds { where; rounds; limit } ->
    Printf.sprintf "%s: %d communication rounds exceed the %d-round limit"
      where rounds limit
  | Negative_time { where; seconds } ->
    Printf.sprintf "%s: negative duration %g s" where seconds
  | Node_crashed { rank; at } ->
    Printf.sprintf "node %d crashed at simulated time %.3f s" rank at
  | Missing_tensor { where; name } ->
    Printf.sprintf "%s: missing tensor %s" where name
  | Deadline_exceeded { where } -> Printf.sprintf "%s: deadline exceeded" where
  | Msg s -> s

(* Stable per-constructor process exit codes, so scripts can branch on the
   failure class without parsing stderr. 1 is left to the CLI layer
   (usage/uncategorized), 2 to generic engine errors. *)
let exit_code = function
  | Msg _ -> 2
  | Runaway_rounds _ -> 3
  | Negative_time _ -> 4
  | Node_crashed _ -> 5
  | Missing_tensor _ -> 6
  | Deadline_exceeded _ -> 7

let kind = function
  | Runaway_rounds _ -> "runaway_rounds"
  | Negative_time _ -> "negative_time"
  | Node_crashed _ -> "node_crashed"
  | Missing_tensor _ -> "missing_tensor"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Msg _ -> "error"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let equal (a : t) (b : t) = a = b

let protect f = match f () with v -> Ok v | exception Error e -> Error e

let to_string_result r = Result.map_error to_string r

let get_ok = function Ok v -> v | Error e -> raise_err e

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Tce_error.Error: " ^ to_string e)
    | _ -> None)
