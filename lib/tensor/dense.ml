open! Import
module A1 = Bigarray.Array1

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

type t = {
  labels : Index.t array;
  ext : int array;
  strides : int array;
  data : buf;
}

let fail fmt = Tce_error.failf fmt

let alloc n : buf =
  let b = A1.create Bigarray.Float64 Bigarray.C_layout n in
  A1.fill b 0.0;
  b

let check_dims dims =
  let labels = List.map fst dims in
  if not (Index.distinct labels) then
    fail "Dense: dimension labels must be distinct";
  List.iter
    (fun (i, n) ->
      if n <= 0 then
        fail "Dense: extent of %s must be positive, got %d" (Index.name i) n)
    dims

let create dims =
  check_dims dims;
  let labels = Array.of_list (List.map fst dims) in
  let ext = Array.of_list (List.map snd dims) in
  {
    labels;
    ext;
    strides = Coords.strides ext;
    data = alloc (Coords.total ext);
  }

let scalar v =
  let t = create [] in
  A1.unsafe_set t.data 0 v;
  t

let dims t =
  Array.to_list (Array.map2 (fun l e -> (l, e)) t.labels t.ext)

let labels t = Array.to_list t.labels
let rank t = Array.length t.labels
let size t = A1.dim t.data

(* Flat-buffer view: the live storage, for the kernel layer. *)
let buf t = t.data
let extents_arr t = Array.copy t.ext
let strides_arr t = Array.copy t.strides
let unsafe_get t o = A1.unsafe_get t.data o
let unsafe_set t o v = A1.unsafe_set t.data o v

let to_floats t =
  let n = size t in
  Array.init n (fun i -> A1.unsafe_get t.data i)

let pos_of_label t i =
  let rec go d =
    if d >= Array.length t.labels then raise Not_found
    else if Index.equal t.labels.(d) i then d
    else go (d + 1)
  in
  go 0

let extent_of t i = t.ext.(pos_of_label t i)
let has_label t i = Array.exists (Index.equal i) t.labels
let stride_of t i = t.strides.(pos_of_label t i)

let coord_of_map t m =
  let n = Array.length t.labels in
  if Index.Map.cardinal m <> n then
    fail "Dense: coordinate must bind exactly the tensor's labels";
  let coord = Array.make n 0 in
  for d = 0 to n - 1 do
    match Index.Map.find_opt t.labels.(d) m with
    | None ->
      fail "Dense: coordinate missing label %s" (Index.name t.labels.(d))
    | Some c ->
      if c < 0 || c >= t.ext.(d) then
        fail "Dense: position %d out of range for %s (extent %d)" c
          (Index.name t.labels.(d))
          t.ext.(d);
      coord.(d) <- c
  done;
  coord

let get t m = A1.get t.data (Coords.offset ~strides:t.strides (coord_of_map t m))

let set t m v =
  A1.set t.data (Coords.offset ~strides:t.strides (coord_of_map t m)) v

let add_at t m v =
  let o = Coords.offset ~strides:t.strides (coord_of_map t m) in
  A1.set t.data o (A1.get t.data o +. v)

let get_value t =
  if rank t <> 0 then fail "Dense.get_value: tensor is not a scalar";
  A1.get t.data 0

let fill t v = A1.fill t.data v

let copy t =
  let data = A1.create Bigarray.Float64 Bigarray.C_layout (size t) in
  A1.blit t.data data;
  { t with data }

let relabel t labels =
  if List.length labels <> Array.length t.labels then
    fail "Dense.relabel: expected %d labels, got %d" (Array.length t.labels)
      (List.length labels);
  let labels = Array.of_list labels in
  if not (Index.distinct (Array.to_list labels)) then
    fail "Dense.relabel: labels must be distinct";
  { (copy t) with labels }

let fill_random t rng =
  let data = t.data in
  for i = 0 to A1.dim data - 1 do
    A1.unsafe_set data i (Prng.float_range rng ~lo:(-1.0) ~hi:1.0)
  done

let map_of_coord t coord =
  let m = ref Index.Map.empty in
  Array.iteri (fun d l -> m := Index.Map.add l coord.(d) !m) t.labels;
  !m

let iteri t ~f =
  Coords.iter t.ext (fun coord ->
      f (map_of_coord t coord)
        (A1.get t.data (Coords.offset ~strides:t.strides coord)))

let init dims ~f =
  let t = create dims in
  Coords.iter t.ext (fun coord ->
      A1.set t.data
        (Coords.offset ~strides:t.strides coord)
        (f (map_of_coord t coord)));
  t

let same_shape a b = a.labels = b.labels && a.ext = b.ext

let map t ~f =
  let out = copy t in
  let d = out.data in
  for i = 0 to A1.dim d - 1 do
    A1.unsafe_set d i (f (A1.unsafe_get d i))
  done;
  out

let map2 a b ~f =
  if not (same_shape a b) then
    fail "Dense.map2: shapes differ (labels or storage order)";
  let da = a.data and db = b.data in
  let n = A1.dim da in
  let out = A1.create Bigarray.Float64 Bigarray.C_layout n in
  for i = 0 to n - 1 do
    A1.unsafe_set out i (f (A1.unsafe_get da i) (A1.unsafe_get db i))
  done;
  { a with data = out }

let frobenius t =
  let data = t.data in
  (* Accumulate in a float-array cell: unboxed stores, unlike a [ref]
     which would box the float on every assignment (no flambda). *)
  let acc = Array.make 1 0.0 in
  for i = 0 to A1.dim data - 1 do
    let x = A1.unsafe_get data i in
    Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. (x *. x))
  done;
  sqrt acc.(0)

let bits_equal a b =
  a.labels = b.labels && a.ext = b.ext
  &&
  let da = a.data and db = b.data in
  let n = A1.dim da in
  let ok = ref true in
  for i = 0 to n - 1 do
    if
      not
        (Int64.equal
           (Int64.bits_of_float (A1.unsafe_get da i))
           (Int64.bits_of_float (A1.unsafe_get db i)))
    then ok := false
  done;
  !ok

(* Stride-walk copy engine: visit the row-major points of [ext], reading
   the source at [sbase] advanced by [sstr] per dimension while the
   destination advances sequentially (destination extents are exactly
   [ext] in storage order). The innermost dimension is a tight loop with
   unchecked accesses; no per-element allocation. *)
let walk_gather ~ext ~sstr ~sbase ~(src : buf) ~(dst : buf) =
  let n = Array.length ext in
  if n = 0 then A1.unsafe_set dst 0 (A1.unsafe_get src sbase)
  else begin
    let k = ref 0 in
    let rec go d soff =
      let e = Array.unsafe_get ext d in
      let s = Array.unsafe_get sstr d in
      if d = n - 1 then begin
        let base = !k in
        for i = 0 to e - 1 do
          A1.unsafe_set dst (base + i) (A1.unsafe_get src (soff + (i * s)))
        done;
        k := base + e
      end
      else
        for i = 0 to e - 1 do
          go (d + 1) (soff + (i * s))
        done
    in
    go 0 sbase
  end

(* Dual of {!walk_gather}: the source advances sequentially over [ext]
   while the destination is strided; [combine] merges into the target. *)
let walk_scatter ~ext ~dstr ~dbase ~(src : buf) ~(dst : buf) ~combine =
  let n = Array.length ext in
  if n = 0 then
    A1.unsafe_set dst dbase
      (combine (A1.unsafe_get dst dbase) (A1.unsafe_get src 0))
  else begin
    let k = ref 0 in
    let rec go d doff =
      let e = Array.unsafe_get ext d in
      let s = Array.unsafe_get dstr d in
      if d = n - 1 then begin
        let base = !k in
        for i = 0 to e - 1 do
          let o = doff + (i * s) in
          A1.unsafe_set dst o
            (combine (A1.unsafe_get dst o) (A1.unsafe_get src (base + i)))
        done;
        k := base + e
      end
      else
        for i = 0 to e - 1 do
          go (d + 1) (doff + (i * s))
        done
    in
    go 0 dbase
  end

let transpose t order =
  if
    List.length order <> rank t
    || not (List.for_all (has_label t) order)
    || not (Index.distinct order)
  then fail "Dense.transpose: order must be a permutation of labels";
  let out = create (List.map (fun i -> (i, extent_of t i)) order) in
  (* Source stride of each output dimension: walking the output row-major
     advances the source by these. *)
  let sstr = Array.map (fun l -> t.strides.(pos_of_label t l)) out.labels in
  walk_gather ~ext:out.ext ~sstr ~sbase:0 ~src:t.data ~dst:out.data;
  out

let slice t i pos =
  let d = pos_of_label t i in
  if pos < 0 || pos >= t.ext.(d) then
    fail "Dense.slice: position out of range";
  let keep = List.filter (fun (l, _) -> not (Index.equal l i)) (dims t) in
  let out = create keep in
  let sstr = Array.map (fun l -> t.strides.(pos_of_label t l)) out.labels in
  walk_gather ~ext:out.ext ~sstr
    ~sbase:(pos * t.strides.(d))
    ~src:t.data ~dst:out.data;
  out

let resolve_ranges t ranges =
  (* Per storage dimension, an (offset, length) window. *)
  List.iter
    (fun (l, _) ->
      if not (has_label t l) then
        fail "Dense.block: foreign label %s" (Index.name l))
    ranges;
  Array.mapi
    (fun d label ->
      match List.find_opt (fun (l, _) -> Index.equal l label) ranges with
      | None -> (0, t.ext.(d))
      | Some (_, (off, len)) ->
        if off < 0 || len <= 0 || off + len > t.ext.(d) then
          fail "Dense.block: bad range (%d,%d) for %s (extent %d)" off len
            (Index.name label) t.ext.(d);
        (off, len))
    t.labels

let block t ranges =
  let windows = resolve_ranges t ranges in
  let out =
    create
      (Array.to_list
         (Array.map2 (fun l (_, len) -> (l, len)) t.labels windows))
  in
  let sbase = ref 0 in
  Array.iteri (fun d (off, _) -> sbase := !sbase + (off * t.strides.(d))) windows;
  walk_gather ~ext:out.ext ~sstr:t.strides ~sbase:!sbase ~src:t.data
    ~dst:out.data;
  out

let write_block ~combine t offsets blk =
  if blk.labels <> t.labels then
    fail "Dense.set_block: block labels must match target labels and order";
  let dbase = ref 0 in
  Array.iteri
    (fun d label ->
      let o =
        match List.find_opt (fun (l, _) -> Index.equal l label) offsets with
        | None -> 0
        | Some (_, o) -> o
      in
      if o < 0 || o + blk.ext.(d) > t.ext.(d) then
        fail "Dense.set_block: block does not fit along %s" (Index.name label);
      dbase := !dbase + (o * t.strides.(d)))
    t.labels;
  walk_scatter ~ext:blk.ext ~dstr:t.strides ~dbase:!dbase ~src:blk.data
    ~dst:t.data ~combine

let set_block t offsets blk = write_block ~combine:(fun _ v -> v) t offsets blk
let add_block t offsets blk = write_block ~combine:( +. ) t offsets blk

let equal_approx ?(tol = 1e-9) a b =
  let la = List.sort Index.compare (labels a)
  and lb = List.sort Index.compare (labels b) in
  List.equal Index.equal la lb
  && List.for_all (fun i -> extent_of a i = extent_of b i) la
  &&
  let b' = if a.labels = b.labels then b else transpose b (labels a) in
  let ok = ref true in
  for k = 0 to size a - 1 do
    let va = A1.unsafe_get a.data k in
    let vb = A1.unsafe_get b'.data k in
    let scale = 1.0 +. Float.max (Float.abs va) (Float.abs vb) in
    if Float.abs (va -. vb) > tol *. scale then ok := false
  done;
  !ok

let to_list t =
  let acc = ref [] in
  iteri t ~f:(fun m v -> acc := (m, v) :: !acc);
  List.rev !acc

let pp ppf t =
  Format.fprintf ppf "T[%a] |.|=%g"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       (fun ppf (l, e) -> Format.fprintf ppf "%a:%d" Index.pp l e))
    (dims t) (frobenius t)
