(** Contraction engine.

    {!contract2} runs through the blocked {!Kernel}; {!contract2_ref} is
    the frozen naive engine kept as the ground-truth oracle — generated
    fused code, the simulated distributed machine and the multicore
    runtime are all checked against it in the test suite, and the kernel
    benchmarks report speedup relative to it. *)

open! Import

val contract2 : out:Index.t list -> Dense.t -> Dense.t -> Dense.t
(** [contract2 ~out a b] is the generalized contraction
    [C(out) = Σ_sum A · B] where the summation indices are every label of
    [a] or [b] not listed in [out]. Labels shared by [a] and [b] must have
    equal extents; every [out] label must occur in [a] or [b]
    ([Tce_error.Error] otherwise). The result's storage order is [out]. *)

val contract2_acc : into:Dense.t -> Dense.t -> Dense.t -> unit
(** [contract2_acc ~into a b] accumulates the contraction into an
    existing tensor (β = 1): [into += contract2 ~out:(labels into) a b],
    with no intermediate allocation. [into] must not share storage with
    the operands. *)

val contract2_ref : out:Index.t list -> Dense.t -> Dense.t -> Dense.t
(** The seed reference implementation of {!contract2}, frozen verbatim:
    full-space iteration with per-point stride dot-products and
    per-element [Index.Map] allocation. Slow by construction; used as
    the oracle in property tests and the baseline in benchmarks. *)

val sum_over : Dense.t -> Index.t list -> Dense.t
(** [sum_over t idxs] sums away the given labels of [t], keeping the
    remaining labels in their storage order. *)

val scale : float -> Dense.t -> Dense.t

val add : Dense.t -> Dense.t -> Dense.t
(** Pointwise sum; shapes must match up to storage order (the second operand
    is transposed to the first's order if needed). *)

val flops_contract2 : out:Index.t list -> Dense.t -> Dense.t -> int
(** Number of floating-point operations (multiply-add counted as 2) a
    full-space engine performs for {!contract2} with these arguments. *)
