open! Import

(* One dimension of the joint iteration space of [C(out) += Σ A·B]: its
   extent and the stride it contributes to each tensor's flat offset
   (0 when the tensor does not carry the label). [sc = 0] marks a
   summation dimension. Classifying by stride pattern instead of label
   sets means Hadamard/batch dimensions (present everywhere), M/N-like
   dimensions (one operand + output) and summation dimensions present in
   only one operand (stride 0 in the other) all fall out of the same
   representation. *)
type dim = { ext : int; sa : int; sb : int; sc : int }

let fail fmt = Tce_error.failf fmt

(* Cache-blocking parameters: KC bounds the summation strip so the A/B
   panels stay cache-resident across the register-tile sweep; MC/NC bound
   the C panel touched per block. Register tile is MR=2 x NR=4. *)
let kc = 256
let mc = 64
let nc = 512

let used_micro = ref false
let last_used_microkernel () = !used_micro

(* Resolve pinned labels of [t] to a base flat offset, and return the
   remaining (visible) labels in storage order. A pinned dimension is
   excluded from iteration entirely; its position only shifts the base. *)
let apply_pins ctx t pins =
  let base = ref 0 in
  List.iter
    (fun (l, p) ->
      match Dense.extent_of t l with
      | exception Not_found ->
        fail "Kernel.%s: pinned label %s not in tensor" ctx (Index.name l)
      | e ->
        if p < 0 || p >= e then
          fail "Kernel.%s: pin %s=%d out of range (extent %d)" ctx
            (Index.name l) p e;
        base := !base + (p * Dense.stride_of t l))
    pins;
  let pinned l = List.exists (fun (l', _) -> Index.equal l l') pins in
  (!base, List.filter (fun l -> not (pinned l)) (Dense.labels t))

(* Extent-1 dimensions contribute nothing to any offset. *)
let drop_unit dims = List.filter (fun d -> d.ext > 1) dims

(* Merge adjacent dimensions that are jointly contiguous in all three
   tensors: outer [o] directly encloses inner [i] when o's stride equals
   i's stride times i's extent — in A, B and C simultaneously (0 = 0·e
   covers absent labels). Coalescing turns e.g. a 4-index CCSD block into
   a plain M x N x K matmul. *)
let coalesce dims =
  List.fold_right
    (fun o acc ->
      match acc with
      | i :: rest
        when o.sa = i.sa * i.ext && o.sb = i.sb * i.ext && o.sc = i.sc * i.ext
        ->
        { ext = o.ext * i.ext; sa = i.sa; sb = i.sb; sc = i.sc } :: rest
      | _ -> o :: acc)
    dims []

(* Generic stride-walk contraction: a recursive loop nest over the output
   dimensions then the summation dimensions, maintaining flat offsets
   incrementally. The innermost loops accumulate straight into the output
   cell through unboxed float-array stores, so there is no per-element
   allocation (a float [ref] would box on every assignment). *)
let walk ~out_dims ~sum_dims da db dc oa0 ob0 oc0 =
  let od = Array.of_list out_dims and sd = Array.of_list sum_dims in
  let no = Array.length od and ns = Array.length sd in
  let rec go_sum d oa ob oc =
    if d = ns - 1 then begin
      let { ext; sa; sb; _ } = Array.unsafe_get sd d in
      for k = 0 to ext - 1 do
        Array.unsafe_set dc oc
          (Array.unsafe_get dc oc
          +. Array.unsafe_get da (oa + (k * sa))
             *. Array.unsafe_get db (ob + (k * sb)))
      done
    end
    else begin
      let { ext; sa; sb; _ } = Array.unsafe_get sd d in
      for k = 0 to ext - 1 do
        go_sum (d + 1) (oa + (k * sa)) (ob + (k * sb)) oc
      done
    end
  in
  let rec go_out d oa ob oc =
    if d = no then
      if ns = 0 then
        Array.unsafe_set dc oc
          (Array.unsafe_get dc oc
          +. (Array.unsafe_get da oa *. Array.unsafe_get db ob))
      else go_sum 0 oa ob oc
    else begin
      let { ext; sa; sb; sc } = Array.unsafe_get od d in
      for i = 0 to ext - 1 do
        go_out (d + 1) (oa + (i * sa)) (ob + (i * sb)) (oc + (i * sc))
      done
    end
  in
  go_out 0 oa0 ob0 oc0

(* Cache-blocked, register-tiled microkernel for the canonical layout:
   the innermost output dimension j is stride-1 in C and absent from A;
   i strides A and C only; k is a summation dimension of both operands.
   C is updated in place (2x4 tile per K strip) with unchecked accesses;
   accumulators live in the C cells themselves rather than float refs,
   which keeps the loop allocation-free without flambda. *)
let gemm_block da db dc ~oa ~ob ~oc ~m ~n ~kext ~sai ~sci ~ska ~sbj ~skb =
  let k0 = ref 0 in
  while !k0 < kext do
    let kend = min kext (!k0 + kc) in
    let ks = !k0 in
    let j0 = ref 0 in
    while !j0 < n do
      let jend = min n (!j0 + nc) in
      let i0 = ref 0 in
      while !i0 < m do
        let iend = min m (!i0 + mc) in
        let i = ref !i0 in
        while !i + 1 < iend do
          let oa0 = oa + (!i * sai) in
          let oa1 = oa0 + sai in
          let oc0 = oc + (!i * sci) in
          let oc1 = oc0 + sci in
          let j = ref !j0 in
          while !j + 3 < jend do
            let p0 = oc0 + !j and p1 = oc1 + !j in
            let obj = ob + (!j * sbj) in
            for kk = ks to kend - 1 do
              let pa = kk * ska in
              let a0 = Array.unsafe_get da (oa0 + pa)
              and a1 = Array.unsafe_get da (oa1 + pa) in
              let pb = obj + (kk * skb) in
              let b0 = Array.unsafe_get db pb
              and b1 = Array.unsafe_get db (pb + sbj)
              and b2 = Array.unsafe_get db (pb + (2 * sbj))
              and b3 = Array.unsafe_get db (pb + (3 * sbj)) in
              Array.unsafe_set dc p0 (Array.unsafe_get dc p0 +. (a0 *. b0));
              Array.unsafe_set dc (p0 + 1)
                (Array.unsafe_get dc (p0 + 1) +. (a0 *. b1));
              Array.unsafe_set dc (p0 + 2)
                (Array.unsafe_get dc (p0 + 2) +. (a0 *. b2));
              Array.unsafe_set dc (p0 + 3)
                (Array.unsafe_get dc (p0 + 3) +. (a0 *. b3));
              Array.unsafe_set dc p1 (Array.unsafe_get dc p1 +. (a1 *. b0));
              Array.unsafe_set dc (p1 + 1)
                (Array.unsafe_get dc (p1 + 1) +. (a1 *. b1));
              Array.unsafe_set dc (p1 + 2)
                (Array.unsafe_get dc (p1 + 2) +. (a1 *. b2));
              Array.unsafe_set dc (p1 + 3)
                (Array.unsafe_get dc (p1 + 3) +. (a1 *. b3))
            done;
            j := !j + 4
          done;
          while !j < jend do
            let p0 = oc0 + !j and p1 = oc1 + !j in
            let pb = ob + (!j * sbj) in
            for kk = ks to kend - 1 do
              let bv = Array.unsafe_get db (pb + (kk * skb)) in
              let pa = kk * ska in
              Array.unsafe_set dc p0
                (Array.unsafe_get dc p0
                +. (Array.unsafe_get da (oa0 + pa) *. bv));
              Array.unsafe_set dc p1
                (Array.unsafe_get dc p1
                +. (Array.unsafe_get da (oa1 + pa) *. bv))
            done;
            incr j
          done;
          i := !i + 2
        done;
        while !i < iend do
          let oa0 = oa + (!i * sai) in
          let oc0 = oc + (!i * sci) in
          let j = ref !j0 in
          while !j < jend do
            let p0 = oc0 + !j in
            let pb = ob + (!j * sbj) in
            for kk = ks to kend - 1 do
              Array.unsafe_set dc p0
                (Array.unsafe_get dc p0
                +. Array.unsafe_get da (oa0 + (kk * ska))
                   *. Array.unsafe_get db (pb + (kk * skb)))
            done;
            incr j
          done;
          incr i
        done;
        i0 := iend
      done;
      j0 := jend
    done;
    k0 := kend
  done

(* Remove the LAST element matching [pred], preserving the order of the
   rest; returns (rest, found). *)
let extract_last pred dims =
  let last = ref (-1) in
  List.iteri (fun i d -> if pred d then last := i) dims;
  if !last < 0 then (dims, None)
  else
    ( List.filteri (fun i _ -> i <> !last) dims,
      Some (List.nth dims !last) )

(* Try the fast path: needs an innermost output dimension with unit C
   stride that one operand lacks entirely (that operand becomes "A").
   Returns [false] when the layout does not canonicalize, in which case
   the caller falls back to the generic walk. *)
let try_micro ~out_dims ~sum_dims da db dc abase bbase cbase =
  match List.rev out_dims with
  | [] -> false
  | jd :: _ when jd.sc <> 1 -> false
  | jd :: _ ->
    (* Orient the operands so that j is absent from A; a contraction is
       symmetric in A·B, so swap when j is absent from B instead. *)
    let swap =
      if jd.sa = 0 && jd.sb <> 0 then Some false
      else if jd.sb = 0 && jd.sa <> 0 then Some true
      else None
    in
    (match swap with
    | None -> false
    | Some sw ->
      let da, db, abase, bbase =
        if sw then (db, da, bbase, abase) else (da, db, abase, bbase)
      in
      let flip d = if sw then { d with sa = d.sb; sb = d.sa } else d in
      let out_dims = List.map flip out_dims and sum_dims = List.map flip sum_dims in
      let rest_out, jdim = extract_last (fun d -> d.sc = 1 && d.sa = 0) out_dims in
      let jd = Option.get jdim in
      (* i: innermost output dimension that strides A but not B. *)
      let rest_out, idim =
        extract_last (fun d -> d.sa <> 0 && d.sb = 0) rest_out
      in
      let id =
        match idim with
        | Some d -> d
        | None -> { ext = 1; sa = 0; sb = 0; sc = 0 }
      in
      (* k: the summation dimension with the smallest A stride (best
         locality in the k-loop); remaining sums stay in the outer walk
         and accumulate across gemm_block calls. *)
      let rest_sum, kdim =
        match sum_dims with
        | [] -> ([], None)
        | _ ->
          let best =
            List.fold_left
              (fun acc d ->
                match acc with
                | None -> Some d
                | Some b ->
                  if d.sa <> 0 && (b.sa = 0 || d.sa < b.sa) then Some d
                  else acc)
              None sum_dims
          in
          let b = Option.get best in
          let rec remove = function
            | [] -> []
            | d :: rest -> if d == b then rest else d :: remove rest
          in
          (remove sum_dims, Some b)
      in
      let kd =
        match kdim with
        | Some d -> d
        | None -> { ext = 1; sa = 0; sb = 0; sc = 0 }
      in
      (* Outer walk over every remaining dimension (output dims via their
         C strides, leftover summation dims with sc = 0); each leaf runs
         one blocked matmul that accumulates into C. *)
      let outer = Array.of_list (rest_out @ rest_sum) in
      let nouter = Array.length outer in
      let rec go d oa ob oc =
        if d = nouter then
          gemm_block da db dc ~oa ~ob ~oc ~m:id.ext ~n:jd.ext ~kext:kd.ext
            ~sai:id.sa ~sci:id.sc ~ska:kd.sa ~sbj:jd.sb ~skb:kd.sb
        else begin
          let { ext; sa; sb; sc } = Array.unsafe_get outer d in
          for i = 0 to ext - 1 do
            go (d + 1) (oa + (i * sa)) (ob + (i * sb)) (oc + (i * sc))
          done
        end
      in
      go 0 abase bbase cbase;
      true)

let contract_acc ?(pin_out = []) ?(pin_a = []) ?(pin_b = []) ~into a b =
  let cbase, cvis = apply_pins "contract_acc" into pin_out in
  let abase, avis = apply_pins "contract_acc" a pin_a in
  let bbase, bvis = apply_pins "contract_acc" b pin_b in
  let visible vis l = List.exists (Index.equal l) vis in
  let vis_stride vis t l = if visible vis l then Dense.stride_of t l else 0 in
  let check_ext t vis l ext =
    if visible vis l && Dense.extent_of t l <> ext then
      fail "Kernel.contract_acc: extent mismatch on label %s" (Index.name l)
  in
  let out_dims =
    List.map
      (fun l ->
        let ext = Dense.extent_of into l in
        let sa = vis_stride avis a l and sb = vis_stride bvis b l in
        if sa = 0 && sb = 0 then
          fail "Kernel.contract_acc: output label %s absent from both operands"
            (Index.name l);
        check_ext a avis l ext;
        check_ext b bvis l ext;
        { ext; sa; sb; sc = Dense.stride_of into l })
      cvis
  in
  let in_out l = visible cvis l in
  let sum_a = List.filter (fun l -> not (in_out l)) avis in
  let sum_b =
    List.filter
      (fun l -> (not (in_out l)) && not (List.exists (Index.equal l) sum_a))
      bvis
  in
  let sum_dims =
    List.map
      (fun l ->
        let ext =
          if visible avis l then Dense.extent_of a l else Dense.extent_of b l
        in
        check_ext a avis l ext;
        check_ext b bvis l ext;
        { ext; sa = vis_stride avis a l; sb = vis_stride bvis b l; sc = 0 })
      (sum_a @ sum_b)
  in
  let out_dims = coalesce (drop_unit out_dims) in
  let sum_dims = coalesce (drop_unit sum_dims) in
  let da = Dense.data a and db = Dense.data b and dc = Dense.data into in
  used_micro := try_micro ~out_dims ~sum_dims da db dc abase bbase cbase;
  if not !used_micro then walk ~out_dims ~sum_dims da db dc abase bbase cbase;
  if Obs.enabled () then begin
    Obs.count
      (if !used_micro then "kernel.microkernel" else "kernel.fallback");
    let dims_product = List.fold_left (fun acc d -> acc * d.ext) 1 in
    Obs.count ~by:(2 * dims_product out_dims * dims_product sum_dims)
      "kernel.flops"
  end
