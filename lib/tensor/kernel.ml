open! Import
module A1 = Bigarray.Array1

(* One dimension of the joint iteration space of [C(out) += Σ A·B]: its
   extent and the stride it contributes to each tensor's flat offset
   (0 when the tensor does not carry the label). [sc = 0] marks a
   summation dimension. Classifying by stride pattern instead of label
   sets means Hadamard/batch dimensions (present everywhere), M/N-like
   dimensions (one operand + output) and summation dimensions present in
   only one operand (stride 0 in the other) all fall out of the same
   representation. *)
type dim = { ext : int; sa : int; sb : int; sc : int }

let fail fmt = Tce_error.failf fmt

(* Cache-blocking parameters: KC bounds the summation strip so the A/B
   panels stay cache-resident across the register-tile sweep; MC/NC bound
   the C panel touched per block. Register tile is MR=2 x NR=4, with the
   K loop unrolled by 4. *)
let kc = 256
let mc = 64
let nc = 512

(* Hadamard-flavor row width: the contiguous innermost-output strip
   processed per packed B panel. *)
let hb = 512

(* Hadamard-flavor summation strip. Much shorter than the GEMM [kc]:
   A is read in place (each element feeds exactly one MAC, so packing
   it would only add traffic), which means the packed B panel must
   share L1 with the streamed A rows — [hkc * hb] panel elements plus
   [hkc] live A cache lines per leaf. 16 measures fastest on the
   noncoalescible bench case across {8, 16, 32, 48, 256}. *)
let hkc = 16

let blocking () = (kc, mc, nc)

type path = Gemm | Hadamard | Dot | Strassen | Walk

let last = ref Walk
let last_path () = !last
let last_used_microkernel () = !last <> Walk

let last_used_packed () =
  match !last with Gemm | Hadamard | Strassen -> true | Dot | Walk -> false

(* Debug oracle: route every contraction through the generic stride walk
   (on the very same canonicalized dimension lists the production
   kernels use), so tests can assert pack-path == walk bit-for-bit. *)
let walk_oracle = ref false
let set_walk_oracle b = walk_oracle := b

(* ------------------------------------------------------------------ *)
(* Strassen knob                                                       *)
(* ------------------------------------------------------------------ *)

(* One recursion level on an n^3-ish multiply trades n^3/4 kernel flops
   (2n^3 - 7·2(n/2)^3) for ~18 half-quadrant element passes, 4.5 n^2
   elements moved at [move_rate]. It pays iff n > 18·flop_rate/move_rate,
   which is the crossover below; see DESIGN.md §15. *)
let strassen_crossover ~flop_rate ~move_rate =
  if flop_rate <= 0.0 || move_rate <= 0.0 then
    fail "Kernel.strassen_crossover: rates must be positive";
  let n = ceil (18.0 *. flop_rate /. move_rate) in
  max 32 (min 4096 (int_of_float n))

(* Measured on the register-tiled kernel in this tree: ~5 Gflop/s of
   microkernel throughput against ~1 G elements/s of add/copy passes. *)
let default_crossover = strassen_crossover ~flop_rate:5e9 ~move_rate:1e9
let strassen_state = ref None (* None = off, Some crossover = on *)

let set_strassen ?crossover enabled =
  (match crossover with
  | Some c when c < 2 -> fail "Kernel.set_strassen: crossover must be >= 2"
  | _ -> ());
  strassen_state :=
    if enabled then Some (Option.value crossover ~default:default_crossover)
    else None

let strassen_config () = !strassen_state

(* ------------------------------------------------------------------ *)
(* Canonicalization helpers                                            *)
(* ------------------------------------------------------------------ *)

(* Resolve pinned labels of [t] to a base flat offset, and return the
   remaining (visible) labels in storage order. A pinned dimension is
   excluded from iteration entirely; its position only shifts the base. *)
let apply_pins ctx t pins =
  let base = ref 0 in
  List.iter
    (fun (l, p) ->
      match Dense.extent_of t l with
      | exception Not_found ->
        fail "Kernel.%s: pinned label %s not in tensor" ctx (Index.name l)
      | e ->
        if p < 0 || p >= e then
          fail "Kernel.%s: pin %s=%d out of range (extent %d)" ctx
            (Index.name l) p e;
        base := !base + (p * Dense.stride_of t l))
    pins;
  let pinned l = List.exists (fun (l', _) -> Index.equal l l') pins in
  (!base, List.filter (fun l -> not (pinned l)) (Dense.labels t))

(* Extent-1 dimensions contribute nothing to any offset. *)
let drop_unit dims = List.filter (fun d -> d.ext > 1) dims

(* Merge adjacent dimensions that are jointly contiguous in all three
   tensors: outer [o] directly encloses inner [i] when o's stride equals
   i's stride times i's extent — in A, B and C simultaneously (0 = 0·e
   covers absent labels). Coalescing turns e.g. a 4-index CCSD block into
   a plain M x N x K matmul. *)
let coalesce dims =
  List.fold_right
    (fun o acc ->
      match acc with
      | i :: rest
        when o.sa = i.sa * i.ext && o.sb = i.sb * i.ext && o.sc = i.sc * i.ext
        ->
        { ext = o.ext * i.ext; sa = i.sa; sb = i.sb; sc = i.sc } :: rest
      | _ -> o :: acc)
    dims []

(* Generic stride-walk contraction over the raw storage, kept verbatim
   from the pre-packing kernel as the debug oracle: a recursive loop nest
   over the output dimensions then the summation dimensions, maintaining
   flat offsets incrementally. Every packed path below accumulates each
   output cell in exactly this order, so walk and pack agree bit-for-bit
   on the same canonicalized dimension lists. *)
let walk ~out_dims ~sum_dims (da : Dense.buf) (db : Dense.buf)
    (dc : Dense.buf) oa0 ob0 oc0 =
  let od = Array.of_list out_dims and sd = Array.of_list sum_dims in
  let no = Array.length od and ns = Array.length sd in
  let rec go_sum d oa ob oc =
    if d = ns - 1 then begin
      let { ext; sa; sb; _ } = Array.unsafe_get sd d in
      for k = 0 to ext - 1 do
        A1.unsafe_set dc oc
          (A1.unsafe_get dc oc
          +. A1.unsafe_get da (oa + (k * sa)) *. A1.unsafe_get db (ob + (k * sb))
          )
      done
    end
    else begin
      let { ext; sa; sb; _ } = Array.unsafe_get sd d in
      for k = 0 to ext - 1 do
        go_sum (d + 1) (oa + (k * sa)) (ob + (k * sb)) oc
      done
    end
  in
  let rec go_out d oa ob oc =
    if d = no then
      if ns = 0 then
        A1.unsafe_set dc oc
          (A1.unsafe_get dc oc
          +. (A1.unsafe_get da oa *. A1.unsafe_get db ob))
      else go_sum 0 oa ob oc
    else begin
      let { ext; sa; sb; sc } = Array.unsafe_get od d in
      for i = 0 to ext - 1 do
        go_out (d + 1) (oa + (i * sa)) (ob + (i * sb)) (oc + (i * sc))
      done
    end
  in
  go_out 0 oa0 ob0 oc0

(* ------------------------------------------------------------------ *)
(* Per-domain scratch: packed panels, register-tile spill cells, and
   flat offset tables. Grow-only, reused across calls, domain-local so
   concurrent Multicore ranks never share a panel.                     *)
(* ------------------------------------------------------------------ *)

type scratch = {
  mutable ap : float array; (* packed A panel / Strassen A *)
  mutable bp : float array; (* packed B panel / Strassen B *)
  mutable cp : float array; (* packed C panel / Strassen product *)
  acc : float array; (* 2x4 register-tile spill cells *)
  mutable ma : int array; (* M-group offsets into A *)
  mutable mcf : int array; (* M-group offsets into C *)
  mutable nb : int array; (* N-group offsets into B *)
  mutable ncf : int array; (* N-group offsets into C *)
  mutable ka : int array; (* K-group offsets into A *)
  mutable kb : int array; (* K-group offsets into B *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        ap = [||];
        bp = [||];
        cp = [||];
        acc = Array.make 8 0.0;
        ma = [||];
        mcf = [||];
        nb = [||];
        ncf = [||];
        ka = [||];
        kb = [||];
      })

let grow_f arr n = if Array.length arr >= n then arr else Array.make n 0.0
let grow_i arr n = if Array.length arr >= n then arr else Array.make n 0

(* Fill [tbl.(0 .. prod ext - 1)] with the row-major flat-offset table of
   [dims] against the strides selected by [which]. *)
let fill_offsets tbl dims which =
  let nd = Array.length dims in
  let k = ref 0 in
  let rec go d base =
    if d = nd then begin
      Array.unsafe_set tbl !k base;
      incr k
    end
    else begin
      let dm = Array.unsafe_get dims d in
      let s = which dm in
      for x = 0 to dm.ext - 1 do
        go (d + 1) (base + (x * s))
      done
    end
  in
  go 0 0

let prod dims = Array.fold_left (fun acc d -> acc * d.ext) 1 dims

(* ------------------------------------------------------------------ *)
(* Register-tiled microkernel on flat float arrays                     *)
(* ------------------------------------------------------------------ *)

(* [micro] multiplies an [mw x kw] panel of [ap] (row stride [lda], unit
   K stride) by a [kw x nw] panel of [bp] (row stride [ldb], unit N
   stride) into [cp] (row stride [ldc], unit N stride), accumulating on
   top of what is already there. 2x4 register tile; the K loop is
   unrolled by 4 with left-associated chained adds, so each C cell sees
   the same addition sequence as a plain ascending-K loop — bit-identical
   to the stride walk — while touching each accumulator cell once per 4
   MACs instead of once per MAC. Accumulators live in the 8 reusable
   [acc] spill cells (unboxed float-array stores; no allocation). *)
let micro ap bp cp ~oa ~ob ~oc ~mw ~nw ~kw ~lda ~ldb ~ldc ~acc =
  (* NR-column groups outer, M-row pairs inner: the [kw x 4] B
     micro-panel stays L1-resident across the whole M sweep while the
     larger A panel streams from L2 — the cheap direction, since the A
     panel is read once per column group instead of the B panel once per
     row pair. *)
  let j = ref 0 in
  while !j + 3 < nw do
    let i = ref 0 in
    while !i + 1 < mw do
      let ra0 = oa + (!i * lda) in
      let ra1 = ra0 + lda in
      let p0 = oc + (!i * ldc) + !j and p1 = oc + (!i * ldc) + ldc + !j in
      Array.unsafe_set acc 0 (Array.unsafe_get cp p0);
      Array.unsafe_set acc 1 (Array.unsafe_get cp (p0 + 1));
      Array.unsafe_set acc 2 (Array.unsafe_get cp (p0 + 2));
      Array.unsafe_set acc 3 (Array.unsafe_get cp (p0 + 3));
      Array.unsafe_set acc 4 (Array.unsafe_get cp p1);
      Array.unsafe_set acc 5 (Array.unsafe_get cp (p1 + 1));
      Array.unsafe_set acc 6 (Array.unsafe_get cp (p1 + 2));
      Array.unsafe_set acc 7 (Array.unsafe_get cp (p1 + 3));
      let kk = ref 0 in
      while !kk + 3 < kw do
        let a00 = Array.unsafe_get ap (ra0 + !kk)
        and a01 = Array.unsafe_get ap (ra0 + !kk + 1)
        and a02 = Array.unsafe_get ap (ra0 + !kk + 2)
        and a03 = Array.unsafe_get ap (ra0 + !kk + 3)
        and a10 = Array.unsafe_get ap (ra1 + !kk)
        and a11 = Array.unsafe_get ap (ra1 + !kk + 1)
        and a12 = Array.unsafe_get ap (ra1 + !kk + 2)
        and a13 = Array.unsafe_get ap (ra1 + !kk + 3) in
        let rb0 = ob + (!kk * ldb) + !j in
        let rb1 = rb0 + ldb
        and rb2 = rb0 + (2 * ldb)
        and rb3 = rb0 + (3 * ldb) in
        let b00 = Array.unsafe_get bp rb0
        and b10 = Array.unsafe_get bp rb1
        and b20 = Array.unsafe_get bp rb2
        and b30 = Array.unsafe_get bp rb3 in
        Array.unsafe_set acc 0
          ((((Array.unsafe_get acc 0 +. (a00 *. b00)) +. (a01 *. b10))
           +. (a02 *. b20))
          +. (a03 *. b30));
        Array.unsafe_set acc 4
          ((((Array.unsafe_get acc 4 +. (a10 *. b00)) +. (a11 *. b10))
           +. (a12 *. b20))
          +. (a13 *. b30));
        let b01 = Array.unsafe_get bp (rb0 + 1)
        and b11 = Array.unsafe_get bp (rb1 + 1)
        and b21 = Array.unsafe_get bp (rb2 + 1)
        and b31 = Array.unsafe_get bp (rb3 + 1) in
        Array.unsafe_set acc 1
          ((((Array.unsafe_get acc 1 +. (a00 *. b01)) +. (a01 *. b11))
           +. (a02 *. b21))
          +. (a03 *. b31));
        Array.unsafe_set acc 5
          ((((Array.unsafe_get acc 5 +. (a10 *. b01)) +. (a11 *. b11))
           +. (a12 *. b21))
          +. (a13 *. b31));
        let b02 = Array.unsafe_get bp (rb0 + 2)
        and b12 = Array.unsafe_get bp (rb1 + 2)
        and b22 = Array.unsafe_get bp (rb2 + 2)
        and b32 = Array.unsafe_get bp (rb3 + 2) in
        Array.unsafe_set acc 2
          ((((Array.unsafe_get acc 2 +. (a00 *. b02)) +. (a01 *. b12))
           +. (a02 *. b22))
          +. (a03 *. b32));
        Array.unsafe_set acc 6
          ((((Array.unsafe_get acc 6 +. (a10 *. b02)) +. (a11 *. b12))
           +. (a12 *. b22))
          +. (a13 *. b32));
        let b03 = Array.unsafe_get bp (rb0 + 3)
        and b13 = Array.unsafe_get bp (rb1 + 3)
        and b23 = Array.unsafe_get bp (rb2 + 3)
        and b33 = Array.unsafe_get bp (rb3 + 3) in
        Array.unsafe_set acc 3
          ((((Array.unsafe_get acc 3 +. (a00 *. b03)) +. (a01 *. b13))
           +. (a02 *. b23))
          +. (a03 *. b33));
        Array.unsafe_set acc 7
          ((((Array.unsafe_get acc 7 +. (a10 *. b03)) +. (a11 *. b13))
           +. (a12 *. b23))
          +. (a13 *. b33));
        kk := !kk + 4
      done;
      while !kk < kw do
        let a0 = Array.unsafe_get ap (ra0 + !kk)
        and a1 = Array.unsafe_get ap (ra1 + !kk) in
        let rb = ob + (!kk * ldb) + !j in
        let b0 = Array.unsafe_get bp rb
        and b1 = Array.unsafe_get bp (rb + 1)
        and b2 = Array.unsafe_get bp (rb + 2)
        and b3 = Array.unsafe_get bp (rb + 3) in
        Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. (a0 *. b0));
        Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. (a0 *. b1));
        Array.unsafe_set acc 2 (Array.unsafe_get acc 2 +. (a0 *. b2));
        Array.unsafe_set acc 3 (Array.unsafe_get acc 3 +. (a0 *. b3));
        Array.unsafe_set acc 4 (Array.unsafe_get acc 4 +. (a1 *. b0));
        Array.unsafe_set acc 5 (Array.unsafe_get acc 5 +. (a1 *. b1));
        Array.unsafe_set acc 6 (Array.unsafe_get acc 6 +. (a1 *. b2));
        Array.unsafe_set acc 7 (Array.unsafe_get acc 7 +. (a1 *. b3));
        incr kk
      done;
      Array.unsafe_set cp p0 (Array.unsafe_get acc 0);
      Array.unsafe_set cp (p0 + 1) (Array.unsafe_get acc 1);
      Array.unsafe_set cp (p0 + 2) (Array.unsafe_get acc 2);
      Array.unsafe_set cp (p0 + 3) (Array.unsafe_get acc 3);
      Array.unsafe_set cp p1 (Array.unsafe_get acc 4);
      Array.unsafe_set cp (p1 + 1) (Array.unsafe_get acc 5);
      Array.unsafe_set cp (p1 + 2) (Array.unsafe_get acc 6);
      Array.unsafe_set cp (p1 + 3) (Array.unsafe_get acc 7);
      i := !i + 2
    done;
    if !i < mw then begin
      (* Odd trailing row: 1x4 tile, same ascending-K chains. *)
      let ra0 = oa + (!i * lda) in
      let p0 = oc + (!i * ldc) + !j in
      Array.unsafe_set acc 0 (Array.unsafe_get cp p0);
      Array.unsafe_set acc 1 (Array.unsafe_get cp (p0 + 1));
      Array.unsafe_set acc 2 (Array.unsafe_get cp (p0 + 2));
      Array.unsafe_set acc 3 (Array.unsafe_get cp (p0 + 3));
      let kk = ref 0 in
      while !kk + 3 < kw do
        let a00 = Array.unsafe_get ap (ra0 + !kk)
        and a01 = Array.unsafe_get ap (ra0 + !kk + 1)
        and a02 = Array.unsafe_get ap (ra0 + !kk + 2)
        and a03 = Array.unsafe_get ap (ra0 + !kk + 3) in
        let rb0 = ob + (!kk * ldb) + !j in
        let rb1 = rb0 + ldb
        and rb2 = rb0 + (2 * ldb)
        and rb3 = rb0 + (3 * ldb) in
        Array.unsafe_set acc 0
          ((((Array.unsafe_get acc 0
             +. (a00 *. Array.unsafe_get bp rb0))
            +. (a01 *. Array.unsafe_get bp rb1))
           +. (a02 *. Array.unsafe_get bp rb2))
          +. (a03 *. Array.unsafe_get bp rb3));
        Array.unsafe_set acc 1
          ((((Array.unsafe_get acc 1
             +. (a00 *. Array.unsafe_get bp (rb0 + 1)))
            +. (a01 *. Array.unsafe_get bp (rb1 + 1)))
           +. (a02 *. Array.unsafe_get bp (rb2 + 1)))
          +. (a03 *. Array.unsafe_get bp (rb3 + 1)));
        Array.unsafe_set acc 2
          ((((Array.unsafe_get acc 2
             +. (a00 *. Array.unsafe_get bp (rb0 + 2)))
            +. (a01 *. Array.unsafe_get bp (rb1 + 2)))
           +. (a02 *. Array.unsafe_get bp (rb2 + 2)))
          +. (a03 *. Array.unsafe_get bp (rb3 + 2)));
        Array.unsafe_set acc 3
          ((((Array.unsafe_get acc 3
             +. (a00 *. Array.unsafe_get bp (rb0 + 3)))
            +. (a01 *. Array.unsafe_get bp (rb1 + 3)))
           +. (a02 *. Array.unsafe_get bp (rb2 + 3)))
          +. (a03 *. Array.unsafe_get bp (rb3 + 3)));
        kk := !kk + 4
      done;
      while !kk < kw do
        let a0 = Array.unsafe_get ap (ra0 + !kk) in
        let rb = ob + (!kk * ldb) + !j in
        Array.unsafe_set acc 0
          (Array.unsafe_get acc 0 +. (a0 *. Array.unsafe_get bp rb));
        Array.unsafe_set acc 1
          (Array.unsafe_get acc 1 +. (a0 *. Array.unsafe_get bp (rb + 1)));
        Array.unsafe_set acc 2
          (Array.unsafe_get acc 2 +. (a0 *. Array.unsafe_get bp (rb + 2)));
        Array.unsafe_set acc 3
          (Array.unsafe_get acc 3 +. (a0 *. Array.unsafe_get bp (rb + 3)));
        incr kk
      done;
      Array.unsafe_set cp p0 (Array.unsafe_get acc 0);
      Array.unsafe_set cp (p0 + 1) (Array.unsafe_get acc 1);
      Array.unsafe_set cp (p0 + 2) (Array.unsafe_get acc 2);
      Array.unsafe_set cp (p0 + 3) (Array.unsafe_get acc 3)
    end;
    j := !j + 4
  done;
  (* Trailing columns (nw mod 4): 2x1 pairs then a lone cell. *)
  while !j < nw do
    let i = ref 0 in
    while !i + 1 < mw do
      let ra0 = oa + (!i * lda) in
      let ra1 = ra0 + lda in
      let p0 = oc + (!i * ldc) + !j and p1 = oc + (!i * ldc) + ldc + !j in
      Array.unsafe_set acc 0 (Array.unsafe_get cp p0);
      Array.unsafe_set acc 1 (Array.unsafe_get cp p1);
      for kk = 0 to kw - 1 do
        let bv = Array.unsafe_get bp (ob + (kk * ldb) + !j) in
        Array.unsafe_set acc 0
          (Array.unsafe_get acc 0 +. (Array.unsafe_get ap (ra0 + kk) *. bv));
        Array.unsafe_set acc 1
          (Array.unsafe_get acc 1 +. (Array.unsafe_get ap (ra1 + kk) *. bv))
      done;
      Array.unsafe_set cp p0 (Array.unsafe_get acc 0);
      Array.unsafe_set cp p1 (Array.unsafe_get acc 1);
      i := !i + 2
    done;
    if !i < mw then begin
      let ra0 = oa + (!i * lda) in
      let p0 = oc + (!i * ldc) + !j in
      Array.unsafe_set acc 0 (Array.unsafe_get cp p0);
      for kk = 0 to kw - 1 do
        Array.unsafe_set acc 0
          (Array.unsafe_get acc 0
          +. (Array.unsafe_get ap (ra0 + kk)
             *. Array.unsafe_get bp (ob + (kk * ldb) + !j)))
      done;
      Array.unsafe_set cp p0 (Array.unsafe_get acc 0)
    end;
    incr j
  done

(* Blocked GEMM over flat arrays already in canonical layout (unit K
   stride in A, unit N stride in B and C): the Strassen base case. *)
let gemm_flat a b c ~oa ~ob ~oc ~m ~n ~k ~lda ~ldb ~ldc ~acc =
  let pc = ref 0 in
  while !pc < k do
    let kw = min kc (k - !pc) in
    let jc = ref 0 in
    while !jc < n do
      let nw = min nc (n - !jc) in
      let ic = ref 0 in
      while !ic < m do
        let mw = min mc (m - !ic) in
        micro a b c
          ~oa:(oa + (!ic * lda) + !pc)
          ~ob:(ob + (!pc * ldb) + !jc)
          ~oc:(oc + (!ic * ldc) + !jc)
          ~mw ~nw ~kw ~lda ~ldb ~ldc ~acc;
        ic := !ic + mw
      done;
      jc := !jc + nw
    done;
    pc := !pc + kw
  done

(* ------------------------------------------------------------------ *)
(* Strassen recursion (tolerance path; never bit-identical)            *)
(* ------------------------------------------------------------------ *)

(* Pointwise helpers on packed row-major blocks. [dst] is a fresh
   [rows x cols] block with unit row stride [cols]. *)
let blk_add dst src1 o1 ld1 src2 o2 ld2 ~rows ~cols =
  for i = 0 to rows - 1 do
    let r = i * cols and r1 = o1 + (i * ld1) and r2 = o2 + (i * ld2) in
    for j = 0 to cols - 1 do
      Array.unsafe_set dst (r + j)
        (Array.unsafe_get src1 (r1 + j) +. Array.unsafe_get src2 (r2 + j))
    done
  done

let blk_sub dst src1 o1 ld1 src2 o2 ld2 ~rows ~cols =
  for i = 0 to rows - 1 do
    let r = i * cols and r1 = o1 + (i * ld1) and r2 = o2 + (i * ld2) in
    for j = 0 to cols - 1 do
      Array.unsafe_set dst (r + j)
        (Array.unsafe_get src1 (r1 + j) -. Array.unsafe_get src2 (r2 + j))
    done
  done

let blk_copy dst src o ld ~rows ~cols =
  for i = 0 to rows - 1 do
    let r = i * cols and r1 = o + (i * ld) in
    for j = 0 to cols - 1 do
      Array.unsafe_set dst (r + j) (Array.unsafe_get src (r1 + j))
    done
  done

let blk_accum c oc ldc p ~sign ~rows ~cols =
  for i = 0 to rows - 1 do
    let r = oc + (i * ldc) and rp = i * cols in
    if sign > 0 then
      for j = 0 to cols - 1 do
        Array.unsafe_set c (r + j)
          (Array.unsafe_get c (r + j) +. Array.unsafe_get p (rp + j))
      done
    else
      for j = 0 to cols - 1 do
        Array.unsafe_set c (r + j)
          (Array.unsafe_get c (r + j) -. Array.unsafe_get p (rp + j))
      done
  done

(* C += A·B with classical 7-product Strassen recursion; recursion stops
   on odd extents or when the half-size would drop below [xover], where
   the blocked microkernel takes over. Temporaries are allocated per
   level (sizes shrink 4x per level; only large multiplies get here). *)
let rec strassen_rec a b c ~oa ~ob ~oc ~m ~n ~k ~lda ~ldb ~ldc ~xover ~acc =
  if
    m land 1 = 1
    || n land 1 = 1
    || k land 1 = 1
    || min m (min n k) < 2 * xover
  then gemm_flat a b c ~oa ~ob ~oc ~m ~n ~k ~lda ~ldb ~ldc ~acc
  else begin
    let m2 = m / 2 and n2 = n / 2 and k2 = k / 2 in
    let ta = Array.make (m2 * k2) 0.0 in
    let tb = Array.make (k2 * n2) 0.0 in
    let p = Array.make (m2 * n2) 0.0 in
    let a11 = oa
    and a12 = oa + k2
    and a21 = oa + (m2 * lda)
    and a22 = oa + (m2 * lda) + k2 in
    let b11 = ob
    and b12 = ob + n2
    and b21 = ob + (k2 * ldb)
    and b22 = ob + (k2 * ldb) + n2 in
    let c11 = oc
    and c12 = oc + n2
    and c21 = oc + (m2 * ldc)
    and c22 = oc + (m2 * ldc) + n2 in
    let recurse ta tb =
      Array.fill p 0 (m2 * n2) 0.0;
      strassen_rec ta tb p ~oa:0 ~ob:0 ~oc:0 ~m:m2 ~n:n2 ~k:k2 ~lda:k2
        ~ldb:n2 ~ldc:n2 ~xover ~acc
    in
    (* M1 = (A11 + A22)(B11 + B22) -> C11, C22 *)
    blk_add ta a a11 lda a a22 lda ~rows:m2 ~cols:k2;
    blk_add tb b b11 ldb b b22 ldb ~rows:k2 ~cols:n2;
    recurse ta tb;
    blk_accum c c11 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    blk_accum c c22 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    (* M2 = (A21 + A22) B11 -> C21, -C22 *)
    blk_add ta a a21 lda a a22 lda ~rows:m2 ~cols:k2;
    blk_copy tb b b11 ldb ~rows:k2 ~cols:n2;
    recurse ta tb;
    blk_accum c c21 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    blk_accum c c22 ldc p ~sign:(-1) ~rows:m2 ~cols:n2;
    (* M3 = A11 (B12 - B22) -> C12, C22 *)
    blk_copy ta a a11 lda ~rows:m2 ~cols:k2;
    blk_sub tb b b12 ldb b b22 ldb ~rows:k2 ~cols:n2;
    recurse ta tb;
    blk_accum c c12 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    blk_accum c c22 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    (* M4 = A22 (B21 - B11) -> C11, C21 *)
    blk_copy ta a a22 lda ~rows:m2 ~cols:k2;
    blk_sub tb b b21 ldb b b11 ldb ~rows:k2 ~cols:n2;
    recurse ta tb;
    blk_accum c c11 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    blk_accum c c21 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    (* M5 = (A11 + A12) B22 -> -C11, C12 *)
    blk_add ta a a11 lda a a12 lda ~rows:m2 ~cols:k2;
    blk_copy tb b b22 ldb ~rows:k2 ~cols:n2;
    recurse ta tb;
    blk_accum c c11 ldc p ~sign:(-1) ~rows:m2 ~cols:n2;
    blk_accum c c12 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    (* M6 = (A21 - A11)(B11 + B12) -> C22 *)
    blk_sub ta a a21 lda a a11 lda ~rows:m2 ~cols:k2;
    blk_add tb b b11 ldb b b12 ldb ~rows:k2 ~cols:n2;
    recurse ta tb;
    blk_accum c c22 ldc p ~sign:1 ~rows:m2 ~cols:n2;
    (* M7 = (A12 - A22)(B21 + B22) -> C11 *)
    blk_sub ta a a12 lda a a22 lda ~rows:m2 ~cols:k2;
    blk_add tb b b21 ldb b b22 ldb ~rows:k2 ~cols:n2;
    recurse ta tb;
    blk_accum c c11 ldc p ~sign:1 ~rows:m2 ~cols:n2
  end

(* ------------------------------------------------------------------ *)
(* Flavor drivers                                                      *)
(* ------------------------------------------------------------------ *)

(* GEMM flavor: pack-and-tile over (M, N, K) index groups, with any
   batch (Hadamard) dimensions walked outside. For each (MC, NC) block
   of C: gather the block into the contiguous [cp] panel (so later
   K strips keep accumulating on the caller's initial values, exactly
   like the walk), then per KC strip copy-pack the A and B panels into
   canonical layout and run the microkernel; finally scatter the packed
   block back. Offset tables linearize the multi-dimensional groups so
   arbitrary strides — including the noncoalescible layouts that used to
   fall back to the stride walk — all run the same register tile. *)
let gemm_driver st (abuf : Dense.buf) (bbuf : Dense.buf) (cbuf : Dense.buf)
    ~abase ~bbase ~cbase ~msz ~nsz ~ksz =
  let ma = st.ma
  and mcf = st.mcf
  and nb = st.nb
  and ncf = st.ncf
  and ka = st.ka
  and kb = st.kb in
  let ap = st.ap and bp = st.bp and cp = st.cp and acc = st.acc in
  let ic = ref 0 in
  while !ic < msz do
    let mw = min mc (msz - !ic) in
    let jc = ref 0 in
    while !jc < nsz do
      let nw = min nc (nsz - !jc) in
      (* Gather the C block. *)
      for ii = 0 to mw - 1 do
        let co = cbase + Array.unsafe_get mcf (!ic + ii) in
        let r = ii * nw in
        for jj = 0 to nw - 1 do
          Array.unsafe_set cp (r + jj)
            (A1.unsafe_get cbuf (co + Array.unsafe_get ncf (!jc + jj)))
        done
      done;
      let pc = ref 0 in
      while !pc < ksz do
        let kw = min kc (ksz - !pc) in
        (* Pack the A panel: mw x kw, unit K stride. *)
        for ii = 0 to mw - 1 do
          let ao = abase + Array.unsafe_get ma (!ic + ii) in
          let r = ii * kw in
          for t = 0 to kw - 1 do
            Array.unsafe_set ap (r + t)
              (A1.unsafe_get abuf (ao + Array.unsafe_get ka (!pc + t)))
          done
        done;
        (* Pack the B panel: kw x nw, unit N stride. *)
        for t = 0 to kw - 1 do
          let bo = bbase + Array.unsafe_get kb (!pc + t) in
          let r = t * nw in
          for jj = 0 to nw - 1 do
            Array.unsafe_set bp (r + jj)
              (A1.unsafe_get bbuf (bo + Array.unsafe_get nb (!jc + jj)))
          done
        done;
        micro ap bp cp ~oa:0 ~ob:0 ~oc:0 ~mw ~nw ~kw ~lda:kw ~ldb:nw ~ldc:nw
          ~acc;
        pc := !pc + kw
      done;
      (* Scatter the C block back. *)
      for ii = 0 to mw - 1 do
        let co = cbase + Array.unsafe_get mcf (!ic + ii) in
        let r = ii * nw in
        for jj = 0 to nw - 1 do
          A1.unsafe_set cbuf
            (co + Array.unsafe_get ncf (!jc + jj))
            (Array.unsafe_get cp (r + jj))
        done
      done;
      jc := !jc + nw
    done;
    ic := !ic + mw
  done

(* Hadamard flavor: the innermost output dimension [jd] is present in
   both operands (no (M,N,K) form exists), so tile it directly in
   [hb]-wide strips of the contiguous C row. The outer output dimensions
   split by stride pattern: those with a B stride ([rb_dims]) are walked
   outside the B-panel pack, the rest ([ra_dims]) are linearized through
   the M offset tables and register-tiled 2 leaves x 4 cells with the K
   loop unrolled by 4 — the microkernel shape. Per (strip, KC block,
   B-leaf) the B panel is packed once (K x strip, unit J stride) and
   reused across all [ra] leaves; A streams straight from storage
   because each of its elements feeds exactly one MAC — packing it would
   only double its traffic. Cells are independent and each cell's
   additions stay in ascending-K walk order (chained, left-associated),
   so the tiling reorders only the cell visiting order and the
   bit-identity contract with the walk oracle is untouched. *)
let hadamard_driver st (abuf : Dense.buf) (bbuf : Dense.buf)
    (cbuf : Dense.buf) ~abase ~bbase ~cbase ~(jd : dim) ~rb_dims ~ra_dims
    ~ksz =
  let ka = st.ka and kb = st.kb and ma = st.ma and mcf = st.mcf in
  let bp = st.bp and acc = st.acc in
  let saj = jd.sa and sbj = jd.sb in
  let nrb = Array.length rb_dims in
  let msz = prod ra_dims in
  let j0 = ref 0 in
  while !j0 < jd.ext do
    let jw = min hb (jd.ext - !j0) in
    let pc = ref 0 in
    while !pc < ksz do
      let kw = min hkc (ksz - !pc) in
      (* One row fragment of one leaf: cells [jj, jj+cn) accumulated in
         the spill cells [ci, ci+cn), plain ascending-K chain. *)
      let row_tail oa oc ~jj ~cn ~ci =
        for x = 0 to cn - 1 do
          Array.unsafe_set acc (ci + x)
            (A1.unsafe_get cbuf (oc + !j0 + jj + x))
        done;
        for t = 0 to kw - 1 do
          let ao = oa + Array.unsafe_get ka (!pc + t) + ((!j0 + jj) * saj) in
          let r = (t * jw) + jj in
          for x = 0 to cn - 1 do
            Array.unsafe_set acc (ci + x)
              (Array.unsafe_get acc (ci + x)
              +. (A1.unsafe_get abuf (ao + (x * saj))
                 *. Array.unsafe_get bp (r + x)))
          done
        done;
        for x = 0 to cn - 1 do
          A1.unsafe_set cbuf
            (oc + !j0 + jj + x)
            (Array.unsafe_get acc (ci + x))
        done
      in
      (* The 2x4 register tile: leaves at [oa0]/[oa1], cells
         [jj..jj+3], K unrolled by 4 with left-associated chains. *)
      let tile_gen oa0 oc0 oa1 oc1 ~jj =
        let c0 = oc0 + !j0 + jj and c1 = oc1 + !j0 + jj in
        Array.unsafe_set acc 0 (A1.unsafe_get cbuf c0);
        Array.unsafe_set acc 1 (A1.unsafe_get cbuf (c0 + 1));
        Array.unsafe_set acc 2 (A1.unsafe_get cbuf (c0 + 2));
        Array.unsafe_set acc 3 (A1.unsafe_get cbuf (c0 + 3));
        Array.unsafe_set acc 4 (A1.unsafe_get cbuf c1);
        Array.unsafe_set acc 5 (A1.unsafe_get cbuf (c1 + 1));
        Array.unsafe_set acc 6 (A1.unsafe_get cbuf (c1 + 2));
        Array.unsafe_set acc 7 (A1.unsafe_get cbuf (c1 + 3));
        let jb = (!j0 + jj) * saj in
        let p0 = oa0 + jb and q0 = oa1 + jb in
        let t = ref 0 in
        while !t + 3 < kw do
          let k0 = Array.unsafe_get ka (!pc + !t)
          and k1 = Array.unsafe_get ka (!pc + !t + 1)
          and k2 = Array.unsafe_get ka (!pc + !t + 2)
          and k3 = Array.unsafe_get ka (!pc + !t + 3) in
          let r0 = (!t * jw) + jj in
          let r1 = r0 + jw and r2 = r0 + (2 * jw) and r3 = r0 + (3 * jw) in
          for x = 0 to 3 do
            let s = x * saj in
            let b0 = Array.unsafe_get bp (r0 + x)
            and b1 = Array.unsafe_get bp (r1 + x)
            and b2 = Array.unsafe_get bp (r2 + x)
            and b3 = Array.unsafe_get bp (r3 + x) in
            Array.unsafe_set acc x
              ((((Array.unsafe_get acc x
                 +. (A1.unsafe_get abuf (p0 + k0 + s) *. b0))
                +. (A1.unsafe_get abuf (p0 + k1 + s) *. b1))
               +. (A1.unsafe_get abuf (p0 + k2 + s) *. b2))
              +. (A1.unsafe_get abuf (p0 + k3 + s) *. b3));
            Array.unsafe_set acc (4 + x)
              ((((Array.unsafe_get acc (4 + x)
                 +. (A1.unsafe_get abuf (q0 + k0 + s) *. b0))
                +. (A1.unsafe_get abuf (q0 + k1 + s) *. b1))
               +. (A1.unsafe_get abuf (q0 + k2 + s) *. b2))
              +. (A1.unsafe_get abuf (q0 + k3 + s) *. b3))
          done;
          t := !t + 4
        done;
        while !t < kw do
          let k0 = Array.unsafe_get ka (!pc + !t) in
          let r0 = (!t * jw) + jj in
          let pk = p0 + k0 and qk = q0 + k0 in
          for x = 0 to 3 do
            let s = x * saj in
            let b = Array.unsafe_get bp (r0 + x) in
            Array.unsafe_set acc x
              (Array.unsafe_get acc x +. (A1.unsafe_get abuf (pk + s) *. b));
            Array.unsafe_set acc (4 + x)
              (Array.unsafe_get acc (4 + x)
              +. (A1.unsafe_get abuf (qk + s) *. b))
          done;
          incr t
        done;
        A1.unsafe_set cbuf c0 (Array.unsafe_get acc 0);
        A1.unsafe_set cbuf (c0 + 1) (Array.unsafe_get acc 1);
        A1.unsafe_set cbuf (c0 + 2) (Array.unsafe_get acc 2);
        A1.unsafe_set cbuf (c0 + 3) (Array.unsafe_get acc 3);
        A1.unsafe_set cbuf c1 (Array.unsafe_get acc 4);
        A1.unsafe_set cbuf (c1 + 1) (Array.unsafe_get acc 5);
        A1.unsafe_set cbuf (c1 + 2) (Array.unsafe_get acc 6);
        A1.unsafe_set cbuf (c1 + 3) (Array.unsafe_get acc 7)
      in
      (* Unit-J-stride specialization of [tile_gen]: A cells for one K
         row are contiguous, so the cell loop is fully unrolled into
         constant offsets (no per-cell stride multiply). Term order in
         every chain is identical to [tile_gen]. *)
      let tile_u1 oa0 oc0 oa1 oc1 ~jj =
        let c0 = oc0 + !j0 + jj and c1 = oc1 + !j0 + jj in
        Array.unsafe_set acc 0 (A1.unsafe_get cbuf c0);
        Array.unsafe_set acc 1 (A1.unsafe_get cbuf (c0 + 1));
        Array.unsafe_set acc 2 (A1.unsafe_get cbuf (c0 + 2));
        Array.unsafe_set acc 3 (A1.unsafe_get cbuf (c0 + 3));
        Array.unsafe_set acc 4 (A1.unsafe_get cbuf c1);
        Array.unsafe_set acc 5 (A1.unsafe_get cbuf (c1 + 1));
        Array.unsafe_set acc 6 (A1.unsafe_get cbuf (c1 + 2));
        Array.unsafe_set acc 7 (A1.unsafe_get cbuf (c1 + 3));
        let jb = !j0 + jj in
        let p0 = oa0 + jb and q0 = oa1 + jb in
        let dq = q0 - p0 in
        let t = ref 0 in
        while !t + 3 < kw do
          let pk0 = p0 + Array.unsafe_get ka (!pc + !t)
          and pk1 = p0 + Array.unsafe_get ka (!pc + !t + 1)
          and pk2 = p0 + Array.unsafe_get ka (!pc + !t + 2)
          and pk3 = p0 + Array.unsafe_get ka (!pc + !t + 3) in
          let qk0 = pk0 + dq and qk1 = pk1 + dq in
          let qk2 = pk2 + dq and qk3 = pk3 + dq in
          let r0 = (!t * jw) + jj in
          let r1 = r0 + jw and r2 = r0 + (2 * jw) and r3 = r0 + (3 * jw) in
          Array.unsafe_set acc 0 @@
            (((Array.unsafe_get acc 0 +. (A1.unsafe_get abuf pk0 *. Array.unsafe_get bp r0))
             +. (A1.unsafe_get abuf pk1 *. Array.unsafe_get bp r1))
            +. (A1.unsafe_get abuf pk2 *. Array.unsafe_get bp r2))
            +. (A1.unsafe_get abuf pk3 *. Array.unsafe_get bp r3);
          Array.unsafe_set acc 1 @@
            (((Array.unsafe_get acc 1 +. (A1.unsafe_get abuf (pk0 + 1) *. Array.unsafe_get bp (r0 + 1)))
             +. (A1.unsafe_get abuf (pk1 + 1) *. Array.unsafe_get bp (r1 + 1)))
            +. (A1.unsafe_get abuf (pk2 + 1) *. Array.unsafe_get bp (r2 + 1)))
            +. (A1.unsafe_get abuf (pk3 + 1) *. Array.unsafe_get bp (r3 + 1));
          Array.unsafe_set acc 2 @@
            (((Array.unsafe_get acc 2 +. (A1.unsafe_get abuf (pk0 + 2) *. Array.unsafe_get bp (r0 + 2)))
             +. (A1.unsafe_get abuf (pk1 + 2) *. Array.unsafe_get bp (r1 + 2)))
            +. (A1.unsafe_get abuf (pk2 + 2) *. Array.unsafe_get bp (r2 + 2)))
            +. (A1.unsafe_get abuf (pk3 + 2) *. Array.unsafe_get bp (r3 + 2));
          Array.unsafe_set acc 3 @@
            (((Array.unsafe_get acc 3 +. (A1.unsafe_get abuf (pk0 + 3) *. Array.unsafe_get bp (r0 + 3)))
             +. (A1.unsafe_get abuf (pk1 + 3) *. Array.unsafe_get bp (r1 + 3)))
            +. (A1.unsafe_get abuf (pk2 + 3) *. Array.unsafe_get bp (r2 + 3)))
            +. (A1.unsafe_get abuf (pk3 + 3) *. Array.unsafe_get bp (r3 + 3));
          Array.unsafe_set acc 4 @@
            (((Array.unsafe_get acc 4 +. (A1.unsafe_get abuf qk0 *. Array.unsafe_get bp r0))
             +. (A1.unsafe_get abuf qk1 *. Array.unsafe_get bp r1))
            +. (A1.unsafe_get abuf qk2 *. Array.unsafe_get bp r2))
            +. (A1.unsafe_get abuf qk3 *. Array.unsafe_get bp r3);
          Array.unsafe_set acc 5 @@
            (((Array.unsafe_get acc 5 +. (A1.unsafe_get abuf (qk0 + 1) *. Array.unsafe_get bp (r0 + 1)))
             +. (A1.unsafe_get abuf (qk1 + 1) *. Array.unsafe_get bp (r1 + 1)))
            +. (A1.unsafe_get abuf (qk2 + 1) *. Array.unsafe_get bp (r2 + 1)))
            +. (A1.unsafe_get abuf (qk3 + 1) *. Array.unsafe_get bp (r3 + 1));
          Array.unsafe_set acc 6 @@
            (((Array.unsafe_get acc 6 +. (A1.unsafe_get abuf (qk0 + 2) *. Array.unsafe_get bp (r0 + 2)))
             +. (A1.unsafe_get abuf (qk1 + 2) *. Array.unsafe_get bp (r1 + 2)))
            +. (A1.unsafe_get abuf (qk2 + 2) *. Array.unsafe_get bp (r2 + 2)))
            +. (A1.unsafe_get abuf (qk3 + 2) *. Array.unsafe_get bp (r3 + 2));
          Array.unsafe_set acc 7 @@
            (((Array.unsafe_get acc 7 +. (A1.unsafe_get abuf (qk0 + 3) *. Array.unsafe_get bp (r0 + 3)))
             +. (A1.unsafe_get abuf (qk1 + 3) *. Array.unsafe_get bp (r1 + 3)))
            +. (A1.unsafe_get abuf (qk2 + 3) *. Array.unsafe_get bp (r2 + 3)))
            +. (A1.unsafe_get abuf (qk3 + 3) *. Array.unsafe_get bp (r3 + 3));
          t := !t + 4
        done;
        while !t < kw do
          let pk = p0 + Array.unsafe_get ka (!pc + !t) in
          let qk = pk + dq in
          let r0 = (!t * jw) + jj in
          Array.unsafe_set acc 0 @@ Array.unsafe_get acc 0 +. (A1.unsafe_get abuf pk *. Array.unsafe_get bp r0);
          Array.unsafe_set acc 1 @@
            Array.unsafe_get acc 1
            +. (A1.unsafe_get abuf (pk + 1) *. Array.unsafe_get bp (r0 + 1));
          Array.unsafe_set acc 2 @@
            Array.unsafe_get acc 2
            +. (A1.unsafe_get abuf (pk + 2) *. Array.unsafe_get bp (r0 + 2));
          Array.unsafe_set acc 3 @@
            Array.unsafe_get acc 3
            +. (A1.unsafe_get abuf (pk + 3) *. Array.unsafe_get bp (r0 + 3));
          Array.unsafe_set acc 4 @@ Array.unsafe_get acc 4 +. (A1.unsafe_get abuf qk *. Array.unsafe_get bp r0);
          Array.unsafe_set acc 5 @@
            Array.unsafe_get acc 5
            +. (A1.unsafe_get abuf (qk + 1) *. Array.unsafe_get bp (r0 + 1));
          Array.unsafe_set acc 6 @@
            Array.unsafe_get acc 6
            +. (A1.unsafe_get abuf (qk + 2) *. Array.unsafe_get bp (r0 + 2));
          Array.unsafe_set acc 7 @@
            Array.unsafe_get acc 7
            +. (A1.unsafe_get abuf (qk + 3) *. Array.unsafe_get bp (r0 + 3));
          incr t
        done;
        A1.unsafe_set cbuf c0 (Array.unsafe_get acc 0);
        A1.unsafe_set cbuf (c0 + 1) (Array.unsafe_get acc 1);
        A1.unsafe_set cbuf (c0 + 2) (Array.unsafe_get acc 2);
        A1.unsafe_set cbuf (c0 + 3) (Array.unsafe_get acc 3);
        A1.unsafe_set cbuf c1 (Array.unsafe_get acc 4);
        A1.unsafe_set cbuf (c1 + 1) (Array.unsafe_get acc 5);
        A1.unsafe_set cbuf (c1 + 2) (Array.unsafe_get acc 6);
        A1.unsafe_set cbuf (c1 + 3) (Array.unsafe_get acc 7)
      in
      let tile = if saj = 1 then tile_u1 else tile_gen in
      let leaves oa oc =
        let m = ref 0 in
        while !m + 1 < msz do
          let oa0 = oa + Array.unsafe_get ma !m
          and oc0 = oc + Array.unsafe_get mcf !m
          and oa1 = oa + Array.unsafe_get ma (!m + 1)
          and oc1 = oc + Array.unsafe_get mcf (!m + 1) in
          let jj = ref 0 in
          while !jj + 3 < jw do
            tile oa0 oc0 oa1 oc1 ~jj:!jj;
            jj := !jj + 4
          done;
          if !jj < jw then begin
            row_tail oa0 oc0 ~jj:!jj ~cn:(jw - !jj) ~ci:0;
            row_tail oa1 oc1 ~jj:!jj ~cn:(jw - !jj) ~ci:4
          end;
          m := !m + 2
        done;
        if !m < msz then begin
          let oa0 = oa + Array.unsafe_get ma !m
          and oc0 = oc + Array.unsafe_get mcf !m in
          let jj = ref 0 in
          while !jj < jw do
            row_tail oa0 oc0 ~jj:!jj ~cn:(min 4 (jw - !jj)) ~ci:0;
            jj := !jj + 4
          done
        end
      in
      let rec go_rb d oa ob oc =
        if d = nrb then begin
          (* Pack the B panel once for this (strip, KC, B-leaf). *)
          for t = 0 to kw - 1 do
            let bo = ob + Array.unsafe_get kb (!pc + t) + (!j0 * sbj) in
            let r = t * jw in
            for jj = 0 to jw - 1 do
              Array.unsafe_set bp (r + jj)
                (A1.unsafe_get bbuf (bo + (jj * sbj)))
            done
          done;
          leaves oa oc
        end
        else begin
          let { ext; sa; sb; sc } = Array.unsafe_get rb_dims d in
          for x = 0 to ext - 1 do
            go_rb (d + 1) (oa + (x * sa)) (ob + (x * sb)) (oc + (x * sc))
          done
        end
      in
      go_rb 0 abase bbase cbase;
      pc := !pc + kw
    done;
    j0 := !j0 + jw
  done

(* Dot flavor: no surviving output dimensions — a single C cell. The
   summation space is linearized in walk (row-major) order and reduced
   with the same unrolled, left-associated chain. *)
let dot_driver st (abuf : Dense.buf) (bbuf : Dense.buf) (cbuf : Dense.buf)
    ~abase ~bbase ~cbase ~ksz =
  let ka = st.ka and kb = st.kb and acc = st.acc in
  Array.unsafe_set acc 0 (A1.unsafe_get cbuf cbase);
  let t = ref 0 in
  while !t + 3 < ksz do
    Array.unsafe_set acc 0
      ((((Array.unsafe_get acc 0
         +. A1.unsafe_get abuf (abase + Array.unsafe_get ka !t)
            *. A1.unsafe_get bbuf (bbase + Array.unsafe_get kb !t))
        +. A1.unsafe_get abuf (abase + Array.unsafe_get ka (!t + 1))
           *. A1.unsafe_get bbuf (bbase + Array.unsafe_get kb (!t + 1)))
       +. A1.unsafe_get abuf (abase + Array.unsafe_get ka (!t + 2))
          *. A1.unsafe_get bbuf (bbase + Array.unsafe_get kb (!t + 2)))
      +. A1.unsafe_get abuf (abase + Array.unsafe_get ka (!t + 3))
         *. A1.unsafe_get bbuf (bbase + Array.unsafe_get kb (!t + 3)));
    t := !t + 4
  done;
  while !t < ksz do
    Array.unsafe_set acc 0
      (Array.unsafe_get acc 0
      +. A1.unsafe_get abuf (abase + Array.unsafe_get ka !t)
         *. A1.unsafe_get bbuf (bbase + Array.unsafe_get kb !t));
    incr t
  done;
  A1.unsafe_set cbuf cbase (Array.unsafe_get acc 0)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let remove_phys x lst =
  let rec go = function
    | [] -> []
    | d :: rest -> if d == x then rest else d :: go rest
  in
  go lst

(* Replicates the historical inner-K choice of the register-tiled path:
   the summation dimension with the smallest A-side stride (best
   locality in the K loop) moves to the innermost position; the rest
   keep their row-major order outside it. Bit-compatibility with every
   pre-packing result depends on reproducing this exact fold. *)
let kd_reorder sum_dims =
  match sum_dims with
  | [] | [ _ ] -> sum_dims
  | _ ->
    let kd =
      let best =
        List.fold_left
          (fun acc d ->
            match acc with
            | None -> Some d
            | Some b ->
              if d.sa <> 0 && (b.sa = 0 || d.sa < b.sa) then Some d else acc)
          None sum_dims
      in
      Option.get best
    in
    remove_phys kd sum_dims @ [ kd ]

let contract_acc ?(pin_out = []) ?(pin_a = []) ?(pin_b = []) ~into a b =
  let cbase, cvis = apply_pins "contract_acc" into pin_out in
  let abase, avis = apply_pins "contract_acc" a pin_a in
  let bbase, bvis = apply_pins "contract_acc" b pin_b in
  let visible vis l = List.exists (Index.equal l) vis in
  let vis_stride vis t l = if visible vis l then Dense.stride_of t l else 0 in
  let check_ext t vis l ext =
    if visible vis l && Dense.extent_of t l <> ext then
      fail "Kernel.contract_acc: extent mismatch on label %s" (Index.name l)
  in
  let out_dims =
    List.map
      (fun l ->
        let ext = Dense.extent_of into l in
        let sa = vis_stride avis a l and sb = vis_stride bvis b l in
        if sa = 0 && sb = 0 then
          fail "Kernel.contract_acc: output label %s absent from both operands"
            (Index.name l);
        check_ext a avis l ext;
        check_ext b bvis l ext;
        { ext; sa; sb; sc = Dense.stride_of into l })
      cvis
  in
  let in_out l = visible cvis l in
  let sum_a = List.filter (fun l -> not (in_out l)) avis in
  let sum_b =
    List.filter
      (fun l -> (not (in_out l)) && not (List.exists (Index.equal l) sum_a))
      bvis
  in
  let sum_dims =
    List.map
      (fun l ->
        let ext =
          if visible avis l then Dense.extent_of a l else Dense.extent_of b l
        in
        check_ext a avis l ext;
        check_ext b bvis l ext;
        { ext; sa = vis_stride avis a l; sb = vis_stride bvis b l; sc = 0 })
      (sum_a @ sum_b)
  in
  let out_dims = coalesce (drop_unit out_dims) in
  let sum_dims = coalesce (drop_unit sum_dims) in
  let da = Dense.buf a and db = Dense.buf b and dc = Dense.buf into in
  (* Flavor selection. The innermost output dimension (unit C stride
     whenever any survive coalescing) decides the canonical form; the
     summation order is chosen per flavor so each packed path reproduces
     the historical accumulation order bit-for-bit. *)
  let flavor, sum_ordered =
    match List.rev out_dims with
    | [] -> (`Dot, sum_dims)
    | jd :: _ when jd.sc = 1 && jd.sa = 0 && jd.sb <> 0 ->
      (`Gemm false, kd_reorder sum_dims)
    | jd :: _ when jd.sc = 1 && jd.sb = 0 && jd.sa <> 0 ->
      (`Gemm true, kd_reorder (List.map (fun d -> { d with sa = d.sb; sb = d.sa }) sum_dims))
    | jd :: _ when jd.sc = 1 -> (`Hadamard jd, sum_dims)
    | _ -> (`Pinned_inner, sum_dims)
  in
  (* Under [`Gemm true] the operands are swapped (a contraction is
     symmetric in A·B) so the innermost output dimension is always on
     the B side; the walk oracle sees the flipped strides too. *)
  let flipped = match flavor with `Gemm true -> true | _ -> false in
  let out_eff =
    if flipped then List.map (fun d -> { d with sa = d.sb; sb = d.sa }) out_dims
    else out_dims
  in
  let da, db, abase, bbase =
    if flipped then (db, da, bbase, abase) else (da, db, abase, bbase)
  in
  if !walk_oracle then begin
    last := Walk;
    walk ~out_dims:out_eff ~sum_dims:sum_ordered da db dc abase bbase cbase
  end
  else begin
    let st = Domain.DLS.get scratch_key in
    let ksz = List.fold_left (fun acc d -> acc * d.ext) 1 sum_ordered in
    let sumd = Array.of_list sum_ordered in
    st.ka <- grow_i st.ka ksz;
    st.kb <- grow_i st.kb ksz;
    fill_offsets st.ka sumd (fun d -> d.sa);
    fill_offsets st.kb sumd (fun d -> d.sb);
    (match flavor with
    | `Dot ->
      last := Dot;
      dot_driver st da db dc ~abase ~bbase ~cbase ~ksz
    | `Hadamard jd ->
      last := Hadamard;
      let rest = remove_phys jd out_eff in
      let rb_dims = Array.of_list (List.filter (fun d -> d.sb <> 0) rest) in
      let ra_dims = Array.of_list (List.filter (fun d -> d.sb = 0) rest) in
      let msz = prod ra_dims in
      st.ma <- grow_i st.ma msz;
      st.mcf <- grow_i st.mcf msz;
      fill_offsets st.ma ra_dims (fun d -> d.sa);
      fill_offsets st.mcf ra_dims (fun d -> d.sc);
      st.bp <- grow_f st.bp (min hkc ksz * min hb jd.ext);
      hadamard_driver st da db dc ~abase ~bbase ~cbase ~jd ~rb_dims ~ra_dims
        ~ksz
    | `Gemm _ | `Pinned_inner ->
      (* Partition the (effective) output dimensions into the M group
         (A-and-C), N group (B-and-C) and batch group (all three). *)
      let m_dims =
        Array.of_list (List.filter (fun d -> d.sa <> 0 && d.sb = 0) out_eff)
      in
      let n_dims =
        Array.of_list (List.filter (fun d -> d.sa = 0) out_eff)
      in
      let h_dims =
        Array.of_list (List.filter (fun d -> d.sa <> 0 && d.sb <> 0) out_eff)
      in
      let msz = prod m_dims and nsz = prod n_dims in
      st.ma <- grow_i st.ma msz;
      st.mcf <- grow_i st.mcf msz;
      fill_offsets st.ma m_dims (fun d -> d.sa);
      fill_offsets st.mcf m_dims (fun d -> d.sc);
      st.nb <- grow_i st.nb nsz;
      st.ncf <- grow_i st.ncf nsz;
      fill_offsets st.nb n_dims (fun d -> d.sb);
      fill_offsets st.ncf n_dims (fun d -> d.sc);
      let strassen_xover =
        match !strassen_state with
        | Some xover
          when Array.length h_dims = 0
               && msz land 1 = 0
               && nsz land 1 = 0
               && ksz land 1 = 0
               && min msz (min nsz ksz) >= 2 * xover ->
          Some xover
        | _ -> None
      in
      (match strassen_xover with
      | Some xover ->
        last := Strassen;
        (* Pack both operands whole into canonical layout, run the
           recursion into a zeroed product, then accumulate it onto C
           through the offset tables. *)
        st.ap <- grow_f st.ap (msz * ksz);
        st.bp <- grow_f st.bp (ksz * nsz);
        st.cp <- grow_f st.cp (msz * nsz);
        let ap = st.ap and bp = st.bp and cp = st.cp in
        for i = 0 to msz - 1 do
          let ao = abase + Array.unsafe_get st.ma i in
          let r = i * ksz in
          for t = 0 to ksz - 1 do
            Array.unsafe_set ap (r + t)
              (A1.unsafe_get da (ao + Array.unsafe_get st.ka t))
          done
        done;
        for t = 0 to ksz - 1 do
          let bo = bbase + Array.unsafe_get st.kb t in
          let r = t * nsz in
          for j = 0 to nsz - 1 do
            Array.unsafe_set bp (r + j)
              (A1.unsafe_get db (bo + Array.unsafe_get st.nb j))
          done
        done;
        Array.fill cp 0 (msz * nsz) 0.0;
        strassen_rec ap bp cp ~oa:0 ~ob:0 ~oc:0 ~m:msz ~n:nsz ~k:ksz
          ~lda:ksz ~ldb:nsz ~ldc:nsz ~xover ~acc:st.acc;
        for i = 0 to msz - 1 do
          let co = cbase + Array.unsafe_get st.mcf i in
          let r = i * nsz in
          for j = 0 to nsz - 1 do
            let o = co + Array.unsafe_get st.ncf j in
            A1.unsafe_set dc o (A1.unsafe_get dc o +. Array.unsafe_get cp (r + j))
          done
        done
      | None ->
        last := Gemm;
        st.ap <- grow_f st.ap (min mc msz * min kc ksz);
        st.bp <- grow_f st.bp (min kc ksz * min nc nsz);
        st.cp <- grow_f st.cp (min mc msz * min nc nsz);
        let nh = Array.length h_dims in
        let rec go d oa ob oc =
          if d = nh then
            gemm_driver st da db dc ~abase:oa ~bbase:ob ~cbase:oc ~msz ~nsz
              ~ksz
          else begin
            let { ext; sa; sb; sc } = Array.unsafe_get h_dims d in
            for x = 0 to ext - 1 do
              go (d + 1) (oa + (x * sa)) (ob + (x * sb)) (oc + (x * sc))
            done
          end
        in
        go 0 abase bbase cbase))
  end;
  if Obs.enabled () then begin
    Obs.count
      (match !last with
      | Walk -> "kernel.fallback"
      | Strassen -> "kernel.strassen"
      | Gemm | Hadamard | Dot -> "kernel.microkernel");
    let dims_product = List.fold_left (fun acc d -> acc * d.ext) 1 in
    Obs.count
      ~by:(2 * dims_product out_dims * dims_product sum_dims)
      "kernel.flops"
  end
