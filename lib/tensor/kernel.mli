(** High-performance binary contraction kernel.

    Canonicalizes a contraction [C(out) += Σ A·B] by stride pattern:
    each joint dimension is classified purely by its strides across the
    three tensors, extent-1 dimensions are dropped, and adjacent
    dimensions that are jointly contiguous are coalesced. The result is
    dispatched to one of three pack → microkernel → unpack flavors —
    GEMM (innermost output dimension absent from one operand), Hadamard
    (innermost output dimension present in both) or Dot (no output
    dimensions) — so the 2×4 register-tiled, K-unrolled microkernel runs
    on {e every} binary contraction. Noncoalescible operand layouts are
    copy-packed into contiguous panels through flat offset tables,
    amortized over the KC/MC/NC cache blocking. The generic stride walk
    survives only as a debug oracle behind {!set_walk_oracle}.

    Packing preserves the historical accumulation order of every
    pre-packing path, so results are bit-identical to both the walk (on
    the same canonicalized dimensions) and earlier releases. The
    optional {!set_strassen} path trades that bit guarantee for an
    O(n^2.81) multiply on large near-square GEMM-shaped contractions;
    it is off by default. All paths perform zero per-element
    allocation (panels and offset tables are per-domain, grow-only
    scratch). *)

open! Import

val contract_acc :
  ?pin_out:(Index.t * int) list ->
  ?pin_a:(Index.t * int) list ->
  ?pin_b:(Index.t * int) list ->
  into:Dense.t ->
  Dense.t ->
  Dense.t ->
  unit
(** [contract_acc ~into a b] accumulates (β = 1) the generalized
    contraction of [a] and [b] into [into]: for every coordinate of
    [into]'s labels, the product of [a] and [b] summed over their labels
    not appearing in [into]. [into] is mutated in place and must not
    share storage with [a] or [b].

    The [pin_*] arguments fix labels of the respective tensor at a given
    position: a pinned dimension is excluded from iteration and only
    shifts the tensor's base offset, which lets callers contract into or
    out of a slab of a larger tensor without slicing copies. Raises
    [Tce_error.Error] on foreign or out-of-range pins, on extent
    mismatches, and on output labels absent from both operands. *)

(** {2 Probes} *)

type path =
  | Gemm  (** packed (M,N,K) blocking, register-tiled microkernel *)
  | Hadamard
      (** innermost output dimension shared by both operands: packed B
          panels over contiguous C strips *)
  | Dot  (** full reduction to one cell through offset tables *)
  | Strassen  (** recursive 7-product multiply (opt-in, tolerance path) *)
  | Walk  (** generic stride walk — debug oracle only *)

val last_path : unit -> path
(** Which flavor the most recent {!contract_acc} on this domain took. *)

val last_used_microkernel : unit -> bool
(** Whether the most recent {!contract_acc} on this domain ran a
    register-tiled/unrolled kernel — true for every path except
    {!Walk}. For tests and benchmarks. *)

val last_used_packed : unit -> bool
(** Whether the most recent {!contract_acc} on this domain copy-packed
    operand panels ({!Gemm}, {!Hadamard} and {!Strassen} do; {!Dot} and
    {!Walk} read operands in place). *)

val blocking : unit -> int * int * int
(** The cache-blocking parameters [(KC, MC, NC)]: summation-strip depth,
    C-panel rows and C-panel columns per block. For bench artifacts. *)

(** {2 Knobs} *)

val set_walk_oracle : bool -> unit
(** Route subsequent contractions through the generic stride walk on the
    {e same} canonicalized dimension lists the packed flavors use. The
    packed paths reproduce the walk's accumulation order exactly, so
    pack ≡ walk {b bit-for-bit}; the property suite sweeps this. Global,
    not per-domain; for tests only. Default [false]. *)

val set_strassen : ?crossover:int -> bool -> unit
(** Enable the Strassen path. A contraction takes it when it is
    GEMM-shaped with no batch dimensions and even [M], [N], [K] all at
    least [2 × crossover]; recursion halves the quadrants until a
    dimension turns odd or drops below [crossover], where the blocked
    microkernel takes over. Results differ from the exact paths in the
    last bits (certified ≤ 1e-10 relative Frobenius by the property
    sweep). [crossover] defaults to {!strassen_crossover} applied to
    this kernel's measured flop and copy rates. Raises [Tce_error.Error]
    if [crossover < 2]. Global; default off. *)

val strassen_config : unit -> int option
(** [Some crossover] when the Strassen path is enabled, else [None]. *)

val strassen_crossover : flop_rate:float -> move_rate:float -> int
(** Cost-model crossover rule: one recursion level on an n³ multiply
    saves [n³/4] multiply flops but spends ~[4.5 n²] extra element moves
    (quadrant adds + product accumulation), so it pays iff
    [0.25 n³ / flop_rate > 4.5 n² / move_rate], i.e.
    [n > 18 · flop_rate / move_rate]. Returns that threshold (elements
    per dimension), clamped to [\[32, 4096\]]. [flop_rate] is the
    microkernel's flop/s, [move_rate] sustained element copies/s —
    e.g. from [Tce_netmodel.Params]. Raises [Tce_error.Error] unless
    both rates are positive. *)
