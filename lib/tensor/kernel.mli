(** High-performance binary contraction kernel.

    Canonicalizes a contraction [C(out) += Σ A·B] into (M, N, K) index
    groups: each joint dimension is classified purely by its stride
    pattern across the three tensors, extent-1 dimensions are dropped,
    and adjacent dimensions that are jointly contiguous are coalesced.
    When the resulting layout has a stride-1 innermost output dimension
    absent from one operand, a cache-blocked, register-tiled matmul
    microkernel runs over the flat buffers with unchecked accesses;
    otherwise a generic stride-walk loop nest is used. Both paths
    perform zero per-element allocation. *)

open! Import

val contract_acc :
  ?pin_out:(Index.t * int) list ->
  ?pin_a:(Index.t * int) list ->
  ?pin_b:(Index.t * int) list ->
  into:Dense.t ->
  Dense.t ->
  Dense.t ->
  unit
(** [contract_acc ~into a b] accumulates (β = 1) the generalized
    contraction of [a] and [b] into [into]: for every coordinate of
    [into]'s labels, the product of [a] and [b] summed over their labels
    not appearing in [into]. [into] is mutated in place and must not
    share storage with [a] or [b].

    The [pin_*] arguments fix labels of the respective tensor at a given
    position: a pinned dimension is excluded from iteration and only
    shifts the tensor's base offset, which lets callers contract into or
    out of a slab of a larger tensor without slicing copies. Raises
    [Tce_error.Error] on foreign or out-of-range pins, on extent
    mismatches, and on output labels absent from both operands. *)

val last_used_microkernel : unit -> bool
(** Whether the most recent {!contract_acc} on this domain ran the
    blocked microkernel (as opposed to the generic stride-walk
    fallback). For tests and benchmarks. *)
