(* Aliases for lower-layer libraries; opened by every module in this
   library. *)
module Ints = Tce_util.Ints
module Tce_error = Tce_util.Tce_error
module Listx = Tce_util.Listx
module Prng = Tce_util.Prng
module Index = Tce_index.Index
module Extents = Tce_index.Extents
module Obs = Tce_obs.Obs
