open! Import

let fail fmt = Tce_error.failf fmt

(* For each dimension of the full (out @ sum) iteration space, the stride it
   contributes to a given operand's flat offset (0 when the operand lacks
   that label). *)
let stride_contribs full_labels operand =
  let op_labels = Array.of_list (Dense.labels operand) in
  let op_strides =
    Coords.strides (Array.of_list (List.map snd (Dense.dims operand)))
  in
  Array.of_list
    (List.map
       (fun l ->
         let rec go d =
           if d >= Array.length op_labels then 0
           else if Index.equal op_labels.(d) l then op_strides.(d)
           else go (d + 1)
         in
         go 0)
       full_labels)

let extent_in operands l =
  let rec go = function
    | [] -> fail "Einsum: label %s not found in any operand" (Index.name l)
    | t :: rest -> if Dense.has_label t l then Dense.extent_of t l else go rest
  in
  go operands

let check_shared_extents a b =
  List.iter
    (fun l ->
      if Dense.has_label b l && Dense.extent_of a l <> Dense.extent_of b l then
        fail "Einsum: extent mismatch on shared label %s" (Index.name l))
    (Dense.labels a)

let dot contribs coord =
  let acc = ref 0 in
  for d = 0 to Array.length coord - 1 do
    acc := !acc + (contribs.(d) * coord.(d))
  done;
  !acc

let sum_labels_of ~out a b =
  let in_out l = List.exists (Index.equal l) out in
  List.filter
    (fun l -> not (in_out l))
    (Listx.dedup ~compare:Index.compare (Dense.labels a @ Dense.labels b))

let validate_contract2 ~out a b =
  if not (Index.distinct out) then
    fail "Einsum.contract2: duplicate output labels";
  check_shared_extents a b;
  List.iter
    (fun l ->
      if not (Dense.has_label a l || Dense.has_label b l) then
        fail "Einsum.contract2: output label %s absent from both operands"
          (Index.name l))
    out

let contract2 ~out a b =
  validate_contract2 ~out a b;
  let operands = [ a; b ] in
  let result =
    Dense.create (List.map (fun l -> (l, extent_in operands l)) out)
  in
  Kernel.contract_acc ~into:result a b;
  result

let contract2_acc ~into a b =
  validate_contract2 ~out:(Dense.labels into) a b;
  Kernel.contract_acc ~into a b

(* The seed engine, frozen verbatim as the correctness oracle and the
   benchmark baseline: full-space iteration with a stride dot-product per
   point, operand snapshots copied through the per-element [Index.Map]
   iterator, and a labeled write-back pass. Do not optimize. *)
let contract2_ref ~out a b =
  validate_contract2 ~out a b;
  let buffer_of t =
    let n = Dense.size t in
    let buf = Array.make n 0.0 in
    let k = ref 0 in
    Dense.iteri t ~f:(fun _ v ->
        buf.(!k) <- v;
        incr k);
    buf
  in
  let sum_labels = sum_labels_of ~out a b in
  let full = out @ sum_labels in
  let operands = [ a; b ] in
  let full_ext = Array.of_list (List.map (extent_in operands) full) in
  let result =
    Dense.create (List.map (fun l -> (l, extent_in operands l)) out)
  in
  let ca = stride_contribs full a
  and cb = stride_contribs full b
  and cr = stride_contribs full result in
  let ba = buffer_of a and bb = buffer_of b in
  let br = Array.make (Dense.size result) 0.0 in
  Coords.iter full_ext (fun coord ->
      let o = dot cr coord in
      br.(o) <- br.(o) +. (ba.(dot ca coord) *. bb.(dot cb coord)));
  (* Write the accumulated buffer back through the labeled interface. *)
  let k = ref (-1) in
  Dense.iteri result ~f:(fun m _ ->
      incr k;
      Dense.set result m br.(!k));
  result

let sum_over t idxs =
  List.iter
    (fun l ->
      if not (Dense.has_label t l) then
        fail "Einsum.sum_over: foreign label %s" (Index.name l))
    idxs;
  let keep =
    List.filter
      (fun (l, _) -> not (List.exists (Index.equal l) idxs))
      (Dense.dims t)
  in
  let result = Dense.create keep in
  (* Summation is contraction against the unit scalar; the kernel's
     stride walk does the reduction with no per-element allocation. *)
  Kernel.contract_acc ~into:result t (Dense.scalar 1.0);
  result

let scale k t = Dense.map t ~f:(( *. ) k)

let add a b =
  let b' =
    if Dense.labels a = Dense.labels b then b
    else Dense.transpose b (Dense.labels a)
  in
  Dense.map2 a b' ~f:( +. )

let flops_contract2 ~out a b =
  let operands = [ a; b ] in
  2 * Ints.prod (List.map (extent_in operands) (out @ sum_labels_of ~out a b))
