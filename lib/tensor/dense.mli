(** Dense tensors with named dimensions.

    A tensor's dimensions are labeled by distinct index variables; all
    element access and all algebra (contraction, summation, blocking) is by
    label, never by position, which makes the correspondence with the
    contraction expressions direct and rules out axis-order bugs. Data is
    stored row-major in the label order given at creation. *)

open! Import

type t

val create : (Index.t * int) list -> t
(** [create dims] is a zero tensor with the given labeled extents. Labels
    must be distinct and extents positive; raises [Tce_error.Error]
    otherwise. A rank-0 tensor ([dims = \[\]]) is a scalar. *)

val init : (Index.t * int) list -> f:(int Index.Map.t -> float) -> t
(** Like {!create} but each element is initialized from its coordinate,
    presented as a map from dimension label to position. *)

val scalar : float -> t
(** Rank-0 tensor holding one value. *)

val dims : t -> (Index.t * int) list
(** Labeled extents in storage order. *)

val labels : t -> Index.t list

val rank : t -> int

val size : t -> int
(** Total element count. *)

val extent_of : t -> Index.t -> int
(** Extent of a dimension by label; raises [Not_found] for foreign labels. *)

val has_label : t -> Index.t -> bool

val stride_of : t -> Index.t -> int
(** Row-major storage stride of a dimension by label; raises [Not_found]
    for foreign labels. *)

(** {2 Flat-buffer view}

    Storage is an unboxed C-layout [Bigarray.Array1] of float64 —
    contiguous, unscanned by the GC, shareable across domains, and
    FFI-ready. The kernel layer addresses elements by flat offset into
    the live row-major storage; everyone else goes through the labeled
    accessors or the safe copies below (the former [data : t -> float
    array] escape hatch is gone, so no caller can alias the raw buffer
    behind the kernel's back). Offsets are the stride dot-product of the
    coordinate; no bounds checks are performed by the [unsafe_*]
    accessors. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The storage representation: unboxed float64, C layout, rank 1. *)

val buf : t -> buf
(** The live backing buffer, row-major in label order — {b kernel-layer
    only}. Writes through it mutate the tensor; all other code must use
    the labeled accessors, {!to_floats}, or the algebra in [Einsum]. *)

val to_floats : t -> float array
(** A fresh copy of the elements, row-major in label order. Safe view
    for tests and diagnostics; mutating the result does not touch the
    tensor. *)

val bits_equal : t -> t -> bool
(** True iff both tensors have identical labels, extents, storage order
    and {b bitwise}-identical elements (an [Int64.bits_of_float]
    comparison, so NaNs compare by payload and [-0.] differs from
    [0.]). *)

val extents_arr : t -> int array
(** Extents in storage order (a fresh copy). *)

val strides_arr : t -> int array
(** Row-major strides in storage order (a fresh copy). *)

val unsafe_get : t -> int -> float
(** Element at a flat offset; no bounds check. *)

val unsafe_set : t -> int -> float -> unit
(** Write an element at a flat offset; no bounds check. *)

val get : t -> int Index.Map.t -> float
(** Element at a coordinate given by label. The map must bind exactly the
    tensor's labels to in-range positions. *)

val set : t -> int Index.Map.t -> float -> unit

val add_at : t -> int Index.Map.t -> float -> unit
(** Accumulate into an element. *)

val get_value : t -> float
(** The value of a scalar (rank-0) tensor; raises [Tce_error.Error]
    otherwise. *)

val fill : t -> float -> unit

val copy : t -> t

val relabel : t -> Index.t list -> t
(** [relabel t labels] is a fresh tensor with the same extents, storage
    order and bitwise-identical elements, but dimension [d] renamed to
    [List.nth labels d]. The positional renaming of the sum-plan CSE
    reads: a pure buffer copy, no element is reordered or recomputed.
    Raises [Tce_error.Error] on a length mismatch or repeated labels. *)

val fill_random : t -> Prng.t -> unit
(** Uniform values in [\[-1, 1)]. *)

val iteri : t -> f:(int Index.Map.t -> float -> unit) -> unit
(** Visit every element with its labeled coordinate, row-major. *)

val map : t -> f:(float -> float) -> t
(** Pointwise image of [t] under [f]; same labeled shape and storage
    order, fresh storage. *)

val map2 : t -> t -> f:(float -> float -> float) -> t
(** Pointwise combination; the tensors must have identical labeled shapes
    ({i including} storage order). *)

val frobenius : t -> float
(** Square root of the sum of squared elements. *)

val equal_approx : ?tol:float -> t -> t -> bool
(** True iff both tensors have the same labels/extents (any storage order)
    and elements agree within absolute-plus-relative tolerance [tol]
    (default [1e-9]). *)

val transpose : t -> Index.t list -> t
(** [transpose t order] rearranges storage to the given complete label
    permutation. *)

val slice : t -> Index.t -> int -> t
(** [slice t i pos] fixes label [i] at position [pos] and drops that
    dimension. *)

val block : t -> (Index.t * (int * int)) list -> t
(** [block t ranges] extracts the rectangular sub-block
    [(offset, length)] per listed label; unlisted labels keep their full
    range. The result has the same label order and the block's extents. *)

val set_block : t -> (Index.t * int) list -> t -> unit
(** [set_block t offsets blk] writes block [blk] into [t] at the given
    per-label offsets (0 for unlisted labels). Shapes must fit. *)

val add_block : t -> (Index.t * int) list -> t -> unit
(** Like {!set_block} but accumulates instead of overwriting. *)

val to_list : t -> (int Index.Map.t * float) list
(** All elements with coordinates, row-major; for tests on small tensors. *)

val pp : Format.formatter -> t -> unit
(** Shape-and-norm summary, e.g. [T\[b:4,c:4\] |.|=3.2]; does not print
    elements. *)
